//! Criterion benchmarks for the CSSPGO machinery itself: how fast the
//! paper's components run (profile generation must keep up with a fleet).

use criterion::{criterion_group, criterion_main, Criterion};
use csspgo_codegen::{lower_module, Binary, CodegenConfig};
use csspgo_core::context::ContextProfile;
use csspgo_core::correlate::{dwarf_profile, probe_profile};
use csspgo_core::inference::{infer_counts, InferenceMode};
use csspgo_core::pipeline::PipelineConfig;
use csspgo_core::preinline::{context_sizes, run_preinliner, PreInlineConfig};
use csspgo_core::ranges::RangeCounts;
use csspgo_core::tailcall::TailCallGraph;
use csspgo_core::unwind::Unwinder;
use csspgo_sim::{Machine, Sample, SimConfig};
use std::collections::HashMap;

/// One profiled hhvm run shared by the profile-machinery benches.
struct Profiled {
    binary: Binary,
    samples: Vec<Sample>,
    rc: RangeCounts,
}

fn profiled_hhvm(probes: bool) -> Profiled {
    let w = csspgo_workloads::hhvm().scaled(0.1);
    let cfg = PipelineConfig::default();
    let mut m = csspgo_lang::compile(&w.source, &w.name).unwrap();
    csspgo_opt::discriminators::run(&mut m);
    if probes {
        csspgo_opt::probes::run(&mut m);
    }
    csspgo_opt::run_pipeline(&mut m, &cfg.opt);
    let binary = lower_module(&m, &cfg.codegen);
    let mut machine = Machine::new(
        &binary,
        SimConfig {
            sample_period: 199,
            ..SimConfig::default()
        },
    );
    for (n, v) in &w.setup {
        machine.set_global(n, v);
    }
    for args in &w.train_calls {
        machine.call(&w.entry, args).unwrap();
    }
    let samples = machine.take_samples();
    let mut rc = RangeCounts::default();
    rc.add_samples(&binary, &samples);
    Profiled {
        binary,
        samples,
        rc,
    }
}

fn bench_correlation(c: &mut Criterion) {
    let dwarf = profiled_hhvm(false);
    let probed = profiled_hhvm(true);
    c.bench_function("correlate/dwarf_profile", |b| {
        b.iter(|| dwarf_profile(&dwarf.binary, &dwarf.rc))
    });
    c.bench_function("correlate/probe_profile", |b| {
        b.iter(|| probe_profile(&probed.binary, &probed.rc))
    });
}

fn bench_unwinder(c: &mut Criterion) {
    let p = profiled_hhvm(true);
    let graph = TailCallGraph::build(&p.binary, &p.rc);
    c.bench_function("unwind/algorithm1_per_run", |b| {
        b.iter(|| {
            let mut profile = ContextProfile::new();
            let mut uw = Unwinder::new(&p.binary, Some(&graph));
            uw.unwind_into(&p.samples, &mut profile);
            profile.total()
        })
    });
    c.bench_function("unwind/tailcall_graph_build", |b| {
        b.iter(|| TailCallGraph::build(&p.binary, &p.rc).edge_count())
    });
}

fn bench_preinliner(c: &mut Criterion) {
    let p = profiled_hhvm(true);
    let graph = TailCallGraph::build(&p.binary, &p.rc);
    let mut profile = ContextProfile::new();
    let mut uw = Unwinder::new(&p.binary, Some(&graph));
    uw.unwind_into(&p.samples, &mut profile);
    c.bench_function("preinline/algorithm3_context_sizes", |b| {
        b.iter(|| context_sizes(&p.binary).len())
    });
    c.bench_function("preinline/algorithm2_full", |b| {
        b.iter(|| {
            let mut cp = profile.clone();
            run_preinliner(&mut cp, &p.binary, &PreInlineConfig::default()).inlined
        })
    });
}

fn bench_inference(c: &mut Criterion) {
    // A branchy function with loops for the flow-repair bench.
    let w = csspgo_workloads::ad_retriever();
    let m = csspgo_lang::compile(&w.source, &w.name).unwrap();
    let func = m
        .functions
        .iter()
        .find(|f| f.name == "scan")
        .expect("scan exists");
    let mut raw = HashMap::new();
    for (i, (bid, _)) in func.iter_blocks().enumerate() {
        raw.insert(bid, (i as u64 * 37 + 5) % 1000);
    }
    c.bench_function("inference/mcf", |b| {
        b.iter(|| infer_counts(func, &raw, 500, InferenceMode::Mcf).counts)
    });
    c.bench_function("inference/heuristic", |b| {
        b.iter(|| infer_counts(func, &raw, 500, InferenceMode::Heuristic).counts)
    });
}

fn bench_compile_pipeline(c: &mut Criterion) {
    let w = csspgo_workloads::hhvm();
    c.bench_function("compile/frontend", |b| {
        b.iter(|| {
            csspgo_lang::compile(&w.source, &w.name)
                .unwrap()
                .functions
                .len()
        })
    });
    c.bench_function("compile/full_pipeline_with_probes", |b| {
        b.iter(|| {
            let mut m = csspgo_lang::compile(&w.source, &w.name).unwrap();
            csspgo_opt::discriminators::run(&mut m);
            csspgo_opt::probes::run(&mut m);
            csspgo_opt::run_pipeline(&mut m, &csspgo_opt::OptConfig::default());
            lower_module(&m, &CodegenConfig::default()).len()
        })
    });
}

fn bench_layout(c: &mut Criterion) {
    let w = csspgo_workloads::hhvm();
    let mut m = csspgo_lang::compile(&w.source, &w.name).unwrap();
    // Annotate synthetic counts so layout has something to chew on.
    for f in &mut m.functions {
        let ids: Vec<_> = f.iter_blocks().map(|(b, _)| b).collect();
        for (i, bid) in ids.into_iter().enumerate() {
            f.block_mut(bid).count = Some(((i as u64 * 131) % 997) * 10);
        }
    }
    let cfg = csspgo_opt::OptConfig::default();
    c.bench_function("layout/ext_tsp_module", |b| {
        b.iter(|| {
            let mut m2 = m.clone();
            csspgo_opt::layout::run(&mut m2, &cfg);
        })
    });
}

fn bench_simulator(c: &mut Criterion) {
    let w = csspgo_workloads::ad_finder().scaled(0.05);
    let m = csspgo_lang::compile(&w.source, &w.name).unwrap();
    let b = lower_module(&m, &CodegenConfig::default());
    c.bench_function("sim/interpreter_throughput", |bch| {
        bch.iter(|| {
            let mut machine = Machine::new(&b, SimConfig::default());
            for (n, v) in &w.setup {
                machine.set_global(n, v);
            }
            let mut acc = 0i64;
            for args in w.train_calls.iter().take(2) {
                acc = acc.wrapping_add(machine.call(&w.entry, args).unwrap());
            }
            acc
        })
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets =
        bench_correlation,
        bench_unwinder,
        bench_preinliner,
        bench_inference,
        bench_compile_pipeline,
        bench_layout,
        bench_simulator
);
criterion_main!(benches);
