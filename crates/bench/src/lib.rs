//! Shared harness utilities for the experiment binaries (`fig6_perf`,
//! `fig7_codesize`, …) that regenerate the paper's tables and figures.
//!
//! PGO cycles are independent per (workload, variant) pair, so the harness
//! fans them out across a thread pool ([`run_variants`], [`par_map`]) and
//! reduces outcomes deterministically: results are re-ordered by the
//! variants' presentation order before the behavioural-equivalence check,
//! so completion order never changes what gets compared or printed.

use csspgo_core::fleet::{EpochEvent, FleetStats, RefreshEvent};
use csspgo_core::pipeline::{run_pgo_cycle, PgoOutcome, PgoVariant, PipelineConfig, StageTimes};
use csspgo_core::{SnapshotFormat, Workload};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Scale factor applied to workload traffic; override with the
/// `CSSPGO_SCALE` environment variable (e.g. `0.1` for a quick pass).
/// An unparsable value warns on stderr and falls back to `1.0`.
pub fn traffic_scale() -> f64 {
    match std::env::var("CSSPGO_SCALE") {
        Err(_) => 1.0,
        Ok(raw) => match raw.parse() {
            Ok(v) => v,
            Err(_) => {
                eprintln!("warning: CSSPGO_SCALE={raw:?} is not a number; using scale 1.0");
                1.0
            }
        },
    }
}

/// Snapshot wire format for the serving bins' mid-stream self-check;
/// override with `CSSPGO_SNAPSHOT_FORMAT=text|binary`. An unrecognized
/// value warns on stderr and falls back to binary (the production
/// format), following the [`traffic_scale`] convention.
pub fn snapshot_format_from_env() -> SnapshotFormat {
    match std::env::var("CSSPGO_SNAPSHOT_FORMAT") {
        Err(_) => SnapshotFormat::Binary,
        Ok(raw) => match raw.parse() {
            Ok(fmt) => fmt,
            Err(e) => {
                eprintln!("warning: CSSPGO_SNAPSHOT_FORMAT: {e}; using binary");
                SnapshotFormat::Binary
            }
        },
    }
}

/// The standard experiment configuration.
pub fn experiment_config() -> PipelineConfig {
    PipelineConfig::default()
}

/// Fans `f` out over `items` on the thread pool, returning results in input
/// order so printed reports stay deterministic. Thread count follows
/// `RAYON_NUM_THREADS`.
pub fn par_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Send + Sync,
{
    items.into_par_iter().map(f).collect()
}

/// Presentation rank of a variant (its index in [`PgoVariant::ALL`]).
fn variant_rank(v: PgoVariant) -> usize {
    PgoVariant::ALL
        .iter()
        .position(|&x| x == v)
        .unwrap_or(PgoVariant::ALL.len())
}

/// Runs every requested variant for a workload concurrently, asserting
/// behavioural equivalence across variants (same eval-result hash).
///
/// The reduction is deterministic regardless of which cycle finishes
/// first: outcomes are sorted by presentation order before hashes are
/// compared, so a divergence is always reported against the same baseline
/// variant.
pub fn run_variants(
    workload: &Workload,
    variants: &[PgoVariant],
    config: &PipelineConfig,
) -> HashMap<PgoVariant, PgoOutcome> {
    let mut outcomes: Vec<(PgoVariant, PgoOutcome)> = variants
        .to_vec()
        .into_par_iter()
        .map(|v| {
            let o = run_pgo_cycle(workload, v, config)
                .unwrap_or_else(|e| panic!("{} / {v}: {e}", workload.name));
            (v, o)
        })
        .collect();
    outcomes.sort_by_key(|(v, _)| variant_rank(*v));
    let mut out = HashMap::new();
    let mut hash: Option<u64> = None;
    for (v, o) in outcomes {
        match hash {
            None => hash = Some(o.eval_result_hash),
            Some(h) => assert_eq!(
                h, o.eval_result_hash,
                "{} variant {v} changed program behaviour",
                workload.name
            ),
        }
        out.insert(v, o);
    }
    out
}

/// Percentage improvement of `new` over `base` (positive = faster).
/// A zero baseline yields `0.0` rather than a NaN/∞ that would poison
/// downstream aggregation.
pub fn improvement_pct(base_cycles: u64, new_cycles: u64) -> f64 {
    if base_cycles == 0 {
        return 0.0;
    }
    (base_cycles as f64 - new_cycles as f64) / base_cycles as f64 * 100.0
}

/// Percentage size delta of `new` vs `base` (negative = smaller). A zero
/// baseline yields `0.0` (see [`improvement_pct`]).
pub fn size_delta_pct(base: u64, new: u64) -> f64 {
    if base == 0 {
        return 0.0;
    }
    (new as f64 - base as f64) / base as f64 * 100.0
}

/// Prints a markdown-style table row.
pub fn row(cells: &[String]) -> String {
    format!("| {} |", cells.join(" | "))
}

/// One cell of the per-stage speedup table: `old/new` as a ratio plus the
/// *signed* time delta (`(old − new) / old`, positive = faster). Unlike a
/// bare ratio, a regression is explicit — `0.50x (-100.0%)` — instead of
/// being readable as "small but fine". Missing or non-positive stage
/// times print `-` (nothing meaningful to compare).
pub fn speedup_cell(old: Option<f64>, new: Option<f64>) -> String {
    match (old, new) {
        (Some(old), Some(new)) if old > 0.0 && new > 0.0 => {
            format!("{:.2}x ({:+.1}%)", old / new, (old - new) / old * 100.0)
        }
        _ => "-".to_string(),
    }
}

/// Schema tag stamped on every emitted bench record. Bumped when the
/// record shape changes; consumers comparing against an older file key
/// their leniency off this string (`v1` files carried no tag at all).
pub const BENCH_SCHEMA: &str = "csspgo-bench-v2";

/// One (workload, variant) entry of `BENCH_pipeline.json`: per-stage wall
/// times of a PGO cycle, in milliseconds.
#[derive(Clone, Debug, Serialize)]
pub struct PipelineBenchRecord {
    /// Record-shape version ([`BENCH_SCHEMA`]).
    pub schema: String,
    pub workload: String,
    pub variant: String,
    pub compile_ms: f64,
    pub simulate_ms: f64,
    pub correlate_ms: f64,
    pub preinline_ms: f64,
    /// Binary (`binprof`) profile serialization time in the hand-off
    /// between correlation and recompilation.
    pub serialize_ms: f64,
    /// Binary profile load time on the consuming side of the hand-off.
    pub deserialize_ms: f64,
    /// Profile-inference time (min-cost-flow count repair) inside the
    /// recompile stage, carved out for visibility.
    pub inference_ms: f64,
    pub recompile_ms: f64,
    pub evaluate_ms: f64,
    pub total_ms: f64,
    /// Functions whose stale (checksum-mismatched) counts were dropped at
    /// annotation time. 0 for rows without an annotation stage (epoch
    /// ingest timings).
    pub stale_dropped: usize,
    /// Functions whose stale counts the matcher salvaged
    /// (`stale_matching: recover`).
    pub stale_recovered: usize,
    /// Blocks inference adjusted away from their raw measured counts
    /// (rows that measured inference only; additive in `csspgo-bench-v2`).
    pub counts_adjusted: Option<u64>,
    /// Total absolute count change inference applied.
    pub flow_moved: Option<u64>,
    /// Min-cost-flow routing cost of the repair.
    pub residual_cost: Option<u64>,
    /// Evaluation cycles of the recompiled binary (drift-comparison rows).
    pub eval_cycles: Option<u64>,
    /// Share of the clean-profile PGO cycle win this row retained, in
    /// percent (drift-comparison rows).
    pub cycles_retained_pct: Option<f64>,
    /// Counter sites placed in the profiling build (instrumented rows;
    /// additive in `csspgo-bench-v2` — older files simply lack it).
    pub counter_sites: Option<u64>,
    /// Cycles of the profiling run on the instrumented binary — the
    /// runtime overhead the counter placement is trying to shrink.
    pub profile_cycles: Option<u64>,
    /// Share of the annotated module's weight that is stale-matcher
    /// salvage, in percent (drift-comparison rows).
    pub salvaged_weight_pct: Option<f64>,
    /// Share of the annotated module's weight that is solver-inferred, in
    /// percent (drift-comparison rows).
    pub inferred_weight_pct: Option<f64>,
}

impl PipelineBenchRecord {
    /// Builds a record from a cycle's [`StageTimes`].
    pub fn new(workload: &str, variant: PgoVariant, t: &StageTimes) -> Self {
        Self::labeled(workload, &variant.to_string(), t)
    }

    /// Builds a record with a free-form label in the `variant` column —
    /// how non-cycle rows (e.g. `profile_serve`'s per-epoch ingest
    /// timings, labeled `epoch-N`) share the `BENCH_pipeline.json` shape.
    pub fn labeled(workload: &str, label: &str, t: &StageTimes) -> Self {
        PipelineBenchRecord {
            schema: BENCH_SCHEMA.to_string(),
            workload: workload.to_string(),
            variant: label.to_string(),
            compile_ms: t.compile_ms,
            simulate_ms: t.simulate_ms,
            correlate_ms: t.correlate_ms,
            preinline_ms: t.preinline_ms,
            serialize_ms: t.serialize_ms,
            deserialize_ms: t.deserialize_ms,
            inference_ms: t.inference_ms,
            recompile_ms: t.recompile_ms,
            evaluate_ms: t.evaluate_ms,
            total_ms: t.total_ms(),
            stale_dropped: 0,
            stale_recovered: 0,
            counts_adjusted: None,
            flow_moved: None,
            residual_cost: None,
            eval_cycles: None,
            cycles_retained_pct: None,
            counter_sites: None,
            profile_cycles: None,
            salvaged_weight_pct: None,
            inferred_weight_pct: None,
        }
    }

    /// Attaches annotation stale-handling counters (for rows that ran an
    /// annotation stage, e.g. `profile_serve`'s drift `refresh`).
    pub fn with_stale(mut self, dropped: usize, recovered: usize) -> Self {
        self.stale_dropped = dropped;
        self.stale_recovered = recovered;
        self
    }

    /// Attaches inference repair-effort counters (drift-comparison rows).
    pub fn with_inference(mut self, adjusted: u64, moved: u64, cost: u64) -> Self {
        self.counts_adjusted = Some(adjusted);
        self.flow_moved = Some(moved);
        self.residual_cost = Some(cost);
        self
    }

    /// Attaches the recompiled binary's evaluation cycles.
    pub fn with_eval_cycles(mut self, cycles: u64) -> Self {
        self.eval_cycles = Some(cycles);
        self
    }

    /// Attaches the retained share of the clean-profile win, in percent.
    pub fn with_retained(mut self, pct: f64) -> Self {
        self.cycles_retained_pct = Some(pct);
        self
    }

    /// Attaches instrumentation-overhead measurements: counter sites in
    /// the profiling build and the instrumented profiling run's cycles.
    pub fn with_instrumentation(mut self, sites: u64, profile_cycles: u64) -> Self {
        self.counter_sites = Some(sites);
        self.profile_cycles = Some(profile_cycles);
        self
    }

    /// Attaches the annotated module's provenance mix (salvaged and
    /// inferred weight shares, in percent).
    pub fn with_provenance_pcts(mut self, salvaged: f64, inferred: f64) -> Self {
        self.salvaged_weight_pct = Some(salvaged);
        self.inferred_weight_pct = Some(inferred);
        self
    }
}

/// Writes the perf-trajectory records as pretty JSON to `path`.
///
/// # Errors
///
/// Propagates the underlying filesystem error.
pub fn write_pipeline_bench(path: &str, records: &[PipelineBenchRecord]) -> std::io::Result<()> {
    let json = serde_json::to_string_pretty(records).expect("stage times always serialize");
    std::fs::write(path, json)
}

/// The per-stage columns shared by [`PipelineBenchRecord`] and
/// [`PrevBenchRecord`], in presentation order.
pub const BENCH_STAGES: [&str; 9] = [
    "compile_ms",
    "simulate_ms",
    "correlate_ms",
    "preinline_ms",
    "serialize_ms",
    "deserialize_ms",
    "inference_ms",
    "recompile_ms",
    "evaluate_ms",
];

impl PipelineBenchRecord {
    /// Looks a stage column up by its [`BENCH_STAGES`] name.
    pub fn stage(&self, stage: &str) -> Option<f64> {
        match stage {
            "compile_ms" => Some(self.compile_ms),
            "simulate_ms" => Some(self.simulate_ms),
            "correlate_ms" => Some(self.correlate_ms),
            "preinline_ms" => Some(self.preinline_ms),
            "serialize_ms" => Some(self.serialize_ms),
            "deserialize_ms" => Some(self.deserialize_ms),
            "inference_ms" => Some(self.inference_ms),
            "recompile_ms" => Some(self.recompile_ms),
            "evaluate_ms" => Some(self.evaluate_ms),
            "total_ms" => Some(self.total_ms),
            _ => None,
        }
    }
}

/// A leniently-parsed record from a previously written
/// `BENCH_pipeline.json`. Every column is optional so files written by
/// older harness versions — no `schema` tag, no serialize/deserialize
/// stages — still load for the cross-run speedup comparison.
#[derive(Clone, Debug, Deserialize)]
pub struct PrevBenchRecord {
    pub schema: Option<String>,
    pub workload: String,
    pub variant: String,
    pub compile_ms: Option<f64>,
    pub simulate_ms: Option<f64>,
    pub correlate_ms: Option<f64>,
    pub preinline_ms: Option<f64>,
    pub serialize_ms: Option<f64>,
    pub deserialize_ms: Option<f64>,
    pub inference_ms: Option<f64>,
    pub recompile_ms: Option<f64>,
    pub evaluate_ms: Option<f64>,
    pub total_ms: Option<f64>,
}

impl PrevBenchRecord {
    /// Looks a stage column up by its [`BENCH_STAGES`] name.
    pub fn stage(&self, stage: &str) -> Option<f64> {
        match stage {
            "compile_ms" => self.compile_ms,
            "simulate_ms" => self.simulate_ms,
            "correlate_ms" => self.correlate_ms,
            "preinline_ms" => self.preinline_ms,
            "serialize_ms" => self.serialize_ms,
            "deserialize_ms" => self.deserialize_ms,
            "inference_ms" => self.inference_ms,
            "recompile_ms" => self.recompile_ms,
            "evaluate_ms" => self.evaluate_ms,
            "total_ms" => self.total_ms,
            _ => None,
        }
    }
}

/// Reads a previously written `BENCH_pipeline.json` if one exists and
/// parses. Unreadable or unparsable files are reported on stderr and
/// treated as absent — a stale baseline must never fail a fresh run.
pub fn read_pipeline_bench(path: &str) -> Option<Vec<PrevBenchRecord>> {
    let text = std::fs::read_to_string(path).ok()?;
    match serde_json::from_str(&text) {
        Ok(records) => Some(records),
        Err(e) => {
            eprintln!("warning: ignoring unparsable previous run at {path}: {e}");
            None
        }
    }
}

/// Schema tag on `BENCH_profile_fleet.json`.
pub const FLEET_SCHEMA: &str = "csspgo-fleet-v1";

/// One per-tenant epoch row of `BENCH_profile_fleet.json`: the
/// [`PipelineBenchRecord`] stage columns plus fleet context — tenant,
/// version, residency, and eviction counters.
#[derive(Clone, Debug, Serialize)]
pub struct FleetBenchRecord {
    /// Record-shape version ([`FLEET_SCHEMA`]).
    pub schema: String,
    /// Tenant id (`t0`, `t1`, …).
    pub tenant: String,
    pub workload: String,
    /// Binary version label (`v0`, `v1`, …).
    pub version: String,
    /// Row label: `epoch-N`, `drift-probe`, or `refresh`.
    pub label: String,
    pub samples: u64,
    /// Epoch-to-epoch probe-weight overlap (1.0 for non-epoch rows).
    pub overlap: f64,
    pub stale: bool,
    /// Context nodes resident after the row (beyond base profiles).
    pub resident_contexts: usize,
    /// Subtrees evicted by this row's cap enforcement.
    pub evicted_subtrees: usize,
    /// Weight this row's eviction folded into base profiles.
    pub evicted_weight: u64,
    pub total_ms: f64,
    /// Stale-matching counters (refresh rows only).
    pub stale_dropped: usize,
    pub stale_recovered: usize,
}

impl FleetBenchRecord {
    /// Builds an epoch row from a fleet [`EpochEvent`].
    pub fn epoch(e: &EpochEvent) -> Self {
        FleetBenchRecord {
            schema: FLEET_SCHEMA.to_string(),
            tenant: e.tenant.to_string(),
            workload: e.workload.clone(),
            version: e.version.clone(),
            label: e.label.clone(),
            samples: e.summary.samples as u64,
            overlap: e.summary.overlap,
            stale: e.summary.stale,
            resident_contexts: e.resident_contexts,
            evicted_subtrees: e.evicted_this_epoch.subtrees,
            evicted_weight: e.evicted_this_epoch.weight_folded,
            total_ms: e.stage_times.total_ms(),
            stale_dropped: 0,
            stale_recovered: 0,
        }
    }

    /// Builds a refresh row from a fleet [`RefreshEvent`].
    pub fn refresh(e: &RefreshEvent) -> Self {
        FleetBenchRecord {
            schema: FLEET_SCHEMA.to_string(),
            tenant: e.tenant.to_string(),
            workload: e.workload.clone(),
            version: e.version.clone(),
            label: "refresh".to_string(),
            samples: 0,
            overlap: 1.0,
            stale: true,
            resident_contexts: 0,
            evicted_subtrees: 0,
            evicted_weight: 0,
            total_ms: e.stage_times.total_ms(),
            stale_dropped: e.stale_dropped,
            stale_recovered: e.stale_recovered,
        }
    }
}

/// Fleet-wide aggregates of `BENCH_profile_fleet.json`.
#[derive(Clone, Debug, Serialize)]
pub struct FleetBenchAggregates {
    pub tenants: usize,
    pub versions: usize,
    pub epochs_sealed: u64,
    pub total_samples: u64,
    /// Context nodes resident across the fleet at the end of the run.
    pub resident_contexts: usize,
    /// Cold-context subtrees evicted fleet-wide.
    pub evicted_subtrees: usize,
    /// Weight folded into base profiles fleet-wide (conserved).
    pub evicted_weight: u64,
    /// Drift refreshes that ran.
    pub refreshes_triggered: usize,
    /// Drift refreshes dropped at the bounded queue.
    pub refreshes_dropped: usize,
}

impl From<FleetStats> for FleetBenchAggregates {
    fn from(s: FleetStats) -> Self {
        FleetBenchAggregates {
            tenants: s.tenants,
            versions: s.versions,
            epochs_sealed: s.epochs_sealed,
            total_samples: s.total_samples,
            resident_contexts: s.resident_contexts,
            evicted_subtrees: s.evicted.subtrees,
            evicted_weight: s.evicted.weight_folded,
            refreshes_triggered: s.refreshes_triggered,
            refreshes_dropped: s.refreshes_dropped,
        }
    }
}

/// The `BENCH_profile_fleet.json` document: per-tenant rows + aggregates.
#[derive(Clone, Debug, Serialize)]
pub struct FleetBenchReport {
    /// Record-shape version ([`FLEET_SCHEMA`]).
    pub schema: String,
    pub records: Vec<FleetBenchRecord>,
    pub aggregates: FleetBenchAggregates,
}

impl FleetBenchReport {
    /// Assembles the document (stamps the schema tag).
    pub fn new(records: Vec<FleetBenchRecord>, stats: FleetStats) -> Self {
        FleetBenchReport {
            schema: FLEET_SCHEMA.to_string(),
            records,
            aggregates: stats.into(),
        }
    }
}

/// Writes the fleet report as pretty JSON to `path`.
///
/// # Errors
///
/// Propagates the underlying filesystem error.
pub fn write_fleet_bench(path: &str, report: &FleetBenchReport) -> std::io::Result<()> {
    let json = serde_json::to_string_pretty(report).expect("fleet records always serialize");
    std::fs::write(path, json)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn improvement_math() {
        assert_eq!(improvement_pct(100, 95), 5.0);
        assert_eq!(improvement_pct(100, 105), -5.0);
        assert_eq!(size_delta_pct(100, 95), -5.0);
    }

    #[test]
    fn zero_baselines_do_not_divide() {
        assert_eq!(improvement_pct(0, 50), 0.0);
        assert_eq!(size_delta_pct(0, 50), 0.0);
        assert!(improvement_pct(0, 0).is_finite());
    }

    #[test]
    fn speedup_cells_are_signed() {
        assert_eq!(speedup_cell(Some(2.0), Some(1.0)), "2.00x (+50.0%)");
        assert_eq!(
            speedup_cell(Some(1.0), Some(2.0)),
            "0.50x (-100.0%)",
            "a regression must print with an explicit sign, not clamp"
        );
        assert_eq!(speedup_cell(Some(1.0), Some(1.0)), "1.00x (+0.0%)");
        assert_eq!(speedup_cell(None, Some(1.0)), "-");
        assert_eq!(speedup_cell(Some(1.0), None), "-");
        assert_eq!(speedup_cell(Some(0.0), Some(1.0)), "-");
        assert_eq!(speedup_cell(Some(1.0), Some(0.0)), "-");
    }

    #[test]
    fn par_map_preserves_input_order() {
        let squares = par_map((0..64u64).collect(), |x| x * x);
        assert_eq!(squares, (0..64u64).map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_run_variants_matches_sequential_hashes() {
        let src = r#"
fn work(n) {
    let i = 0;
    let s = 0;
    while (i < n) {
        s = s + i * 3;
        i = i + 1;
    }
    return s;
}
"#;
        let w = Workload::new("mini", src, "work", vec![vec![400]; 2], vec![vec![401]; 2]);
        let cfg = PipelineConfig::builder()
            .sample_period(61)
            .build()
            .expect("valid test config");
        let out = run_variants(&w, &PgoVariant::ALL, &cfg);
        assert_eq!(out.len(), PgoVariant::ALL.len());
        let first = out[&PgoVariant::O2].eval_result_hash;
        for v in PgoVariant::ALL {
            assert_eq!(out[&v].eval_result_hash, first);
        }
        // Sequential reference: same hashes, same outcome fields that matter.
        for v in [PgoVariant::AutoFdo, PgoVariant::CsspgoFull] {
            let seq = run_pgo_cycle(&w, v, &cfg).unwrap();
            assert_eq!(seq.eval_result_hash, out[&v].eval_result_hash);
            assert_eq!(seq.eval.cycles, out[&v].eval.cycles);
            assert_eq!(seq.sections.text, out[&v].sections.text);
        }
    }

    #[test]
    fn pipeline_bench_records_serialize() {
        let t = StageTimes {
            compile_ms: 1.0,
            simulate_ms: 2.0,
            correlate_ms: 3.0,
            preinline_ms: 0.5,
            serialize_ms: 0.25,
            deserialize_ms: 0.125,
            inference_ms: 0.0625,
            recompile_ms: 4.0,
            evaluate_ms: 1.5,
        };
        let rec = PipelineBenchRecord::new("hhvm", PgoVariant::CsspgoFull, &t)
            .with_stale(2, 5)
            .with_inference(7, 120, 999)
            .with_eval_cycles(5000)
            .with_retained(83.5);
        assert_eq!(rec.total_ms, t.total_ms());
        assert_eq!(rec.schema, BENCH_SCHEMA);
        assert_eq!((rec.stale_dropped, rec.stale_recovered), (2, 5));
        assert_eq!(rec.stage("inference_ms"), Some(0.0625));
        assert_eq!(rec.counts_adjusted, Some(7));
        assert_eq!(rec.cycles_retained_pct, Some(83.5));
        for stage in BENCH_STAGES {
            assert!(rec.stage(stage).is_some(), "missing stage {stage}");
        }
        let json = serde_json::to_string(&vec![rec]).unwrap();
        assert!(json.contains("\"correlate_ms\""), "{json}");
        assert!(json.contains("\"serialize_ms\""), "{json}");
        assert!(json.contains("\"inference_ms\""), "{json}");
        assert!(json.contains("\"schema\""), "{json}");
        assert!(json.contains("\"stale_recovered\":5"), "{json}");
        assert!(json.contains("\"eval_cycles\":5000"), "{json}");
        assert!(json.contains("hhvm"), "{json}");
    }

    #[test]
    fn fleet_report_serializes() {
        use csspgo_core::fleet::TenantId;
        use csspgo_core::{EpochSummary, EvictStats};

        let epoch = EpochEvent {
            tenant: TenantId(3),
            workload: "ad_ranker".to_string(),
            version: "v1".to_string(),
            label: "epoch-2".to_string(),
            summary: EpochSummary {
                epoch: 2,
                samples: 512,
                overlap: 0.9,
                ..EpochSummary::default()
            },
            stage_times: StageTimes {
                simulate_ms: 2.0,
                correlate_ms: 1.0,
                ..StageTimes::default()
            },
            resident_contexts: 40,
            evicted_this_epoch: EvictStats {
                subtrees: 2,
                nodes_folded: 5,
                weight_folded: 99,
            },
            evicted_total: EvictStats::default(),
        };
        let refresh = RefreshEvent {
            tenant: TenantId(3),
            workload: "ad_ranker".to_string(),
            version: "v1".to_string(),
            stage_times: StageTimes::default(),
            stale_dropped: 1,
            stale_recovered: 4,
            eval_cycles: 1000,
        };
        let records = vec![
            FleetBenchRecord::epoch(&epoch),
            FleetBenchRecord::refresh(&refresh),
        ];
        assert_eq!(records[0].tenant, "t3");
        assert_eq!(records[0].evicted_weight, 99);
        assert_eq!(records[1].label, "refresh");
        assert_eq!(records[1].stale_recovered, 4);

        let report = FleetBenchReport::new(records, FleetStats::default());
        let json = serde_json::to_string(&report).unwrap();
        assert!(json.contains(FLEET_SCHEMA), "{json}");
        assert!(json.contains("\"resident_contexts\""), "{json}");
        assert!(json.contains("\"refreshes_triggered\""), "{json}");
    }

    #[test]
    fn previous_run_parses_leniently() {
        // A v1-era file: no schema tag, no serialize/deserialize columns.
        let v1 = r#"[{
            "workload": "hhvm",
            "variant": "AutoFDO",
            "compile_ms": 1.0,
            "simulate_ms": 2.0,
            "correlate_ms": 3.0,
            "preinline_ms": 0.0,
            "recompile_ms": 4.0,
            "evaluate_ms": 1.5,
            "total_ms": 11.5
        }]"#;
        let records: Vec<PrevBenchRecord> = serde_json::from_str(v1).unwrap();
        assert_eq!(records.len(), 1);
        let r = &records[0];
        assert_eq!(r.schema, None);
        assert_eq!(r.stage("correlate_ms"), Some(3.0));
        assert_eq!(r.stage("serialize_ms"), None);
        assert_eq!(r.stage("inference_ms"), None);

        // A fresh record survives the same lenient parse round-trip.
        let t = StageTimes {
            serialize_ms: 0.5,
            ..StageTimes::default()
        };
        let rec = PipelineBenchRecord::labeled("hhvm", "epoch-0", &t);
        let json = serde_json::to_string(&vec![rec]).unwrap();
        let back: Vec<PrevBenchRecord> = serde_json::from_str(&json).unwrap();
        assert_eq!(back[0].schema.as_deref(), Some(BENCH_SCHEMA));
        assert_eq!(back[0].stage("serialize_ms"), Some(0.5));
    }
}
