//! Shared harness utilities for the experiment binaries (`fig6_perf`,
//! `fig7_codesize`, …) that regenerate the paper's tables and figures.

use csspgo_core::pipeline::{run_pgo_cycle, PgoOutcome, PgoVariant, PipelineConfig};
use csspgo_core::Workload;
use std::collections::HashMap;

/// Scale factor applied to workload traffic; override with the
/// `CSSPGO_SCALE` environment variable (e.g. `0.1` for a quick pass).
pub fn traffic_scale() -> f64 {
    std::env::var("CSSPGO_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0)
}

/// The standard experiment configuration.
pub fn experiment_config() -> PipelineConfig {
    PipelineConfig::default()
}

/// Runs every requested variant for a workload, asserting behavioural
/// equivalence across variants (same eval-result hash).
pub fn run_variants(
    workload: &Workload,
    variants: &[PgoVariant],
    config: &PipelineConfig,
) -> HashMap<PgoVariant, PgoOutcome> {
    let mut out = HashMap::new();
    let mut hash: Option<u64> = None;
    for &v in variants {
        let o = run_pgo_cycle(workload, v, config)
            .unwrap_or_else(|e| panic!("{} / {v}: {e}", workload.name));
        match hash {
            None => hash = Some(o.eval_result_hash),
            Some(h) => assert_eq!(
                h, o.eval_result_hash,
                "{} variant {v} changed program behaviour",
                workload.name
            ),
        }
        out.insert(v, o);
    }
    out
}

/// Percentage improvement of `new` over `base` (positive = faster).
pub fn improvement_pct(base_cycles: u64, new_cycles: u64) -> f64 {
    (base_cycles as f64 - new_cycles as f64) / base_cycles as f64 * 100.0
}

/// Percentage size delta of `new` vs `base` (negative = smaller).
pub fn size_delta_pct(base: u64, new: u64) -> f64 {
    (new as f64 - base as f64) / base as f64 * 100.0
}

/// Prints a markdown-style table row.
pub fn row(cells: &[String]) -> String {
    format!("| {} |", cells.join(" | "))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn improvement_math() {
        assert_eq!(improvement_pct(100, 95), 5.0);
        assert_eq!(improvement_pct(100, 105), -5.0);
        assert_eq!(size_delta_pct(100, 95), -5.0);
    }
}
