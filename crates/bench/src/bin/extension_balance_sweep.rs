//! **Extension (paper §VI future work)**: "Future work may explore a
//! different overhead and performance balance with CSSPGO to further
//! approach instrumentation-based PGO performance."
//!
//! This sweep enumerates the probe-blocking lattice between the production
//! low-overhead point and the full-barrier point, measuring for each:
//! profiling-binary overhead (what production pays) and the resulting full
//! CSSPGO evaluation performance (what better correlation buys).

use csspgo_bench::{experiment_config, improvement_pct, traffic_scale};
use csspgo_core::pipeline::{build_and_run, run_pgo_cycle, PgoVariant};
use csspgo_ir::probe::ProbeConfig;

fn main() {
    let mut cfg = experiment_config();
    let scale = traffic_scale();
    println!("# Extension — probe overhead/accuracy balance sweep (hhvm), scale={scale}");
    let w = csspgo_workloads::hhvm().scaled(scale);

    let (plain, _) = build_and_run(&w, false, &cfg).expect("plain build");
    let autofdo = run_pgo_cycle(&w, PgoVariant::AutoFdo, &cfg).expect("autofdo");
    let instr = run_pgo_cycle(&w, PgoVariant::Instr, &cfg).expect("instr");
    let instr_gain = improvement_pct(autofdo.eval.cycles, instr.eval.cycles);
    println!("(Instr PGO reference: {instr_gain:+.2}% over AutoFDO)\n");

    let points = [
        (
            "production (nothing blocked)",
            ProbeConfig {
                block_if_convert: false,
                block_code_motion: false,
                block_jump_threading: false,
            },
        ),
        (
            "+ block if-convert",
            ProbeConfig {
                block_if_convert: true,
                block_code_motion: false,
                block_jump_threading: false,
            },
        ),
        (
            "+ block code motion",
            ProbeConfig {
                block_if_convert: true,
                block_code_motion: true,
                block_jump_threading: false,
            },
        ),
        (
            "full barrier (+ block duplication)",
            ProbeConfig::high_accuracy(),
        ),
    ];

    println!("| probe tuning | profiling overhead % | full CSSPGO vs AutoFDO |");
    println!("|---|---|---|");
    for (name, probe) in points {
        cfg.opt.probe = probe;
        let (probed, _) = build_and_run(&w, true, &cfg).expect("probed build");
        let overhead = (probed.cycles as f64 - plain.cycles as f64) / plain.cycles as f64 * 100.0;
        let o = run_pgo_cycle(&w, PgoVariant::CsspgoFull, &cfg).expect("full cycle");
        println!(
            "| {name} | {overhead:+.3} | {:+.2}% |",
            improvement_pct(autofdo.eval.cycles, o.eval.cycles)
        );
    }
    println!("\n(each step preserves more of the original CFG in the profiling binary");
    println!(" at the cost of disabling an optimization there — §III.A's dial)");
}
