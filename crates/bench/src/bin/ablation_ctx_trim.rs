//! **Ablation (paper §III.B "Scalability")**: context-profile size vs the
//! cold-context trimming threshold.
//!
//! Paper: "for programs with a dense dynamic call graph, profile size
//! increase due to context-sensitivity can be on the order of 10x ... our
//! mitigation can produce context-sensitive profile comparable in size to
//! regular profile, without losing its benefit."

use csspgo_bench::{experiment_config, improvement_pct, traffic_scale};
use csspgo_core::pipeline::{run_pgo_cycle, PgoVariant};

/// Entries in a flat probe profile (function profiles plus nested call-site
/// sub-profiles) — the size proxy matching the trie's node count.
fn flat_profile_nodes(fp: &csspgo_core::profile::ProbeProfile) -> usize {
    fn nodes(p: &csspgo_core::profile::ProbeFuncProfile) -> usize {
        1 + p.callsites.values().map(nodes).sum::<usize>()
    }
    fp.funcs.values().map(nodes).sum()
}

fn main() {
    let mut cfg = experiment_config();
    let scale = traffic_scale();
    println!("# Ablation — cold-context trimming (haas), scale={scale}");
    let w = csspgo_workloads::haas().scaled(scale);
    // Build the context-insensitive (probe-only) profile size baseline.
    let flat_funcs = {
        use csspgo_core::{correlate::probe_profile, ranges::RangeCounts};
        use csspgo_sim::{Machine, SimConfig};
        let mut m = csspgo_lang::compile(&w.source, &w.name).expect("compiles");
        csspgo_opt::discriminators::run(&mut m);
        csspgo_opt::probes::run(&mut m);
        csspgo_opt::run_pipeline(&mut m, &cfg.opt);
        let b = csspgo_codegen::lower_module(&m, &cfg.codegen);
        let mut machine = Machine::new(
            &b,
            SimConfig {
                sample_period: cfg.sample_period,
                ..SimConfig::default()
            },
        );
        for (n, v) in &w.setup {
            machine.set_global(n, v);
        }
        for args in &w.train_calls {
            machine.call(&w.entry, args).expect("runs");
        }
        let samples = machine.take_samples();
        let mut rc = RangeCounts::default();
        rc.add_samples(&b, &samples);
        flat_profile_nodes(&probe_profile(&b, &rc))
    };
    println!("(context-insensitive profile: {flat_funcs} profile nodes)");
    println!("| trim threshold | trie nodes before | after | size vs flat | perf vs AutoFDO |");
    println!("|---|---|---|---|---|");
    let autofdo = run_pgo_cycle(&w, PgoVariant::AutoFdo, &cfg).expect("autofdo");
    for threshold in [0u64, 4, 16, 64, 256] {
        cfg.trim_threshold = threshold;
        let o = run_pgo_cycle(&w, PgoVariant::CsspgoFull, &cfg).expect("full");
        let ratio = o.context_nodes_after_trim as f64 / flat_funcs.max(1) as f64;
        println!(
            "| {threshold} | {} | {} | {ratio:.1}x | {:+.2}% |",
            o.context_nodes_before_trim,
            o.context_nodes_after_trim,
            improvement_pct(autofdo.eval.cycles, o.eval.cycles),
        );
    }
}
