//! The multi-tenant profile-continuum fleet: serves several tenants, each
//! with two binary versions in flight (stable + canary), through one
//! [`FleetService`] — concurrent epoch streams, a shared context-profile
//! store under a resident-context cap with LRU-by-epoch cold-context
//! eviction, and per-tenant drift watchdogs feeding a bounded refresh
//! queue.
//!
//! The fleet this binary stands up:
//!
//! * `t0` / ad_ranker and `t1` / hhvm — steady tenants whose traffic is a
//!   tenant-specific re-deal of the same request multiset
//!   ([`tenant_traffic_mix`]): their profiles must converge to the same
//!   totals solo serving would produce;
//! * `t2` / haas — a drifting tenant: its traffic is phase-shifted
//!   ([`phase_shifted`]) so the evaluation mix diverges from the
//!   steady-state tail and the drift watchdog schedules a refresh
//!   recompile (stale matching on, salvage counters recorded).
//!
//! Every version runs under a per-version resident-context cap, so cold
//! context subtrees get folded into base profiles mid-run (weight
//! conserved — the eviction counters in the report prove the fold).
//!
//! Per-tenant epoch rows plus fleet aggregates are written to
//! `BENCH_profile_fleet.json` (override with `BENCH_PROFILE_FLEET_OUT`).
//! `CSSPGO_RESIDENT_CAP` overrides the cap (`0` = unbounded);
//! `CSSPGO_SNAPSHOT_FORMAT` and `CSSPGO_SCALE` behave as in
//! `profile_serve`.

use csspgo_bench::{
    snapshot_format_from_env, traffic_scale, write_fleet_bench, FleetBenchRecord, FleetBenchReport,
};
use csspgo_core::fleet::{
    FleetBinaries, FleetConfig, FleetEvent, FleetService, TenantId, TenantSpec, VersionSpec,
};
use csspgo_core::pipeline::PipelineConfig;
use csspgo_core::stream::StreamConfig;
use csspgo_workloads::{drift, phase_shifted, tenant_traffic_mix};

/// Traffic calls per epoch.
const EPOCH_CALLS: usize = 4;
/// PMU drain granularity.
const BATCH_SAMPLES: usize = 256;
/// Per-version resident-context cap. Tuned so the busiest versions run
/// over it mid-stream and the LRU eviction path genuinely fires; override
/// with `CSSPGO_RESIDENT_CAP` (`0` = unbounded).
const RESIDENT_CAP: usize = 48;
/// Drift verdict threshold: between the steady tenants' epoch-to-epoch
/// overlap (≥ 0.94 — same distribution, re-dealt) and the phase-shifted
/// tenant's eval-epoch overlap (≈ 0.68 — traffic collapsed onto one
/// expression root).
const DRIFT_THRESHOLD: f64 = 0.8;
/// Bounded refresh queue: one slot, so concurrent drift verdicts beyond
/// the first are *dropped* (and counted), never piled up.
const REFRESH_QUEUE_CAP: usize = 1;

fn resident_cap_from_env() -> usize {
    match std::env::var("CSSPGO_RESIDENT_CAP") {
        Err(_) => RESIDENT_CAP,
        Ok(raw) => match raw.parse() {
            Ok(v) => v,
            Err(_) => {
                eprintln!(
                    "warning: CSSPGO_RESIDENT_CAP={raw:?} is not a count; using {RESIDENT_CAP}"
                );
                RESIDENT_CAP
            }
        },
    }
}

/// A two-version tenant: `v0` is the workload's own source, `v1` a canary
/// carrying a behavior-preserving source edit (so the two versions
/// correlate samples against genuinely different probe layouts).
fn two_versions(id: TenantId, workload: csspgo_core::Workload) -> TenantSpec {
    let stable = workload.source.clone();
    let canary = drift::insert_statement(&stable, 1);
    TenantSpec {
        id,
        workload,
        versions: vec![
            VersionSpec::new("v0", stable),
            VersionSpec::new("v1", canary),
        ],
        refresh_source: None,
    }
}

fn main() {
    let scale = traffic_scale();
    let pipeline = PipelineConfig::builder()
        .stream(StreamConfig {
            drift_threshold: DRIFT_THRESHOLD,
            ..StreamConfig::default()
        })
        .build()
        .expect("fleet pipeline config is valid");
    let cfg = FleetConfig::builder()
        .pipeline(pipeline)
        .epoch_calls(EPOCH_CALLS)
        .batch_samples(BATCH_SAMPLES)
        .resident_cap(resident_cap_from_env())
        .refresh_queue_cap(REFRESH_QUEUE_CAP)
        .snapshot_format(snapshot_format_from_env())
        .build()
        .expect("fleet config is valid");

    // Steady tenants: same request multiset, tenant-specific arrival
    // order. Drifting tenant: phase-shifted traffic, refresh builds
    // against cosmetically-changed source (the stale-matching path).
    let mut specs = vec![
        two_versions(
            TenantId(0),
            tenant_traffic_mix(&csspgo_workloads::ad_ranker().scaled(scale), 11),
        ),
        two_versions(
            TenantId(1),
            tenant_traffic_mix(&csspgo_workloads::hhvm().scaled(scale), 22),
        ),
        two_versions(
            TenantId(2),
            // Shift both arguments: evaluation traffic collapses onto a
            // single expression root at one rep — a different hot path
            // entirely from the steady-state sweep.
            phase_shifted(
                &phase_shifted(&csspgo_workloads::haas().scaled(scale), 1),
                0,
            ),
        ),
    ];
    // The refresh release carries a real source edit (a dead guard in one
    // function), so the recompile correlates a profile whose checksums
    // mismatch — the stale-matching salvage path, counters recorded.
    specs[2].refresh_source = Some(drift::insert_statement(&specs[2].workload.source, 3));

    let binaries = FleetBinaries::compile(&specs, &cfg)
        .unwrap_or_else(|e| panic!("fleet compile failed: {e}"));
    println!(
        "fleet: {} tenants, {} tenant-version aggregators, resident cap {}/version\n",
        binaries.tenant_count(),
        binaries.version_count(),
        cfg.resident_cap
    );

    let mut service = FleetService::new(&binaries, cfg);
    let run = service
        .run()
        .unwrap_or_else(|e| panic!("fleet serve failed: {e}"));

    let mut records = Vec::new();
    for event in &run.events {
        match event {
            FleetEvent::Epoch(e) => {
                records.push(FleetBenchRecord::epoch(e));
                println!(
                    "{} {:>12}/{} {:>11}: {:6} samples  {:4} resident  evicted {:3} ({:6} wt)  overlap {:.3}{}",
                    e.tenant,
                    e.workload,
                    e.version,
                    e.label,
                    e.summary.samples,
                    e.resident_contexts,
                    e.evicted_this_epoch.subtrees,
                    e.evicted_this_epoch.weight_folded,
                    e.summary.overlap,
                    if e.summary.stale { "  STALE" } else { "" }
                );
            }
            FleetEvent::SnapshotChecked {
                tenant,
                version,
                format,
                bytes,
            } => {
                println!(
                    "{tenant} {version:>14} {:>11}: {format} {bytes} bytes, restores bit-identical",
                    "snapshot"
                );
            }
            FleetEvent::Refresh(e) => {
                records.push(FleetBenchRecord::refresh(e));
                println!(
                    "{} {:>12}/{} {:>11}: drift refresh, eval {} cycles, {} stale dropped / {} recovered",
                    e.tenant,
                    e.workload,
                    e.version,
                    "refresh",
                    e.eval_cycles,
                    e.stale_dropped,
                    e.stale_recovered
                );
            }
            FleetEvent::RefreshDropped { tenant, version } => {
                println!(
                    "{tenant} {version:>14} {:>11}: refresh dropped at the bounded queue",
                    "refresh"
                );
            }
        }
    }

    let stats = run.stats;
    println!(
        "\nfleet totals: {} epochs, {} samples, {} resident contexts, \
         {} subtrees evicted ({} weight folded), {} refreshes ({} dropped)",
        stats.epochs_sealed,
        stats.total_samples,
        stats.resident_contexts,
        stats.evicted.subtrees,
        stats.evicted.weight_folded,
        stats.refreshes_triggered,
        stats.refreshes_dropped
    );
    assert!(
        stats.refreshes_triggered > 0,
        "drifting tenant t2 should have triggered a refresh"
    );

    let path = std::env::var("BENCH_PROFILE_FLEET_OUT")
        .unwrap_or_else(|_| "BENCH_profile_fleet.json".to_string());
    let report = FleetBenchReport::new(records, stats);
    write_fleet_bench(&path, &report).expect("write profile_fleet bench report");
    println!("wrote {} records to {path}", report.records.len());
}
