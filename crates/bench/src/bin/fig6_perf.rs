//! **Fig. 6**: CSSPGO performance vs AutoFDO (baseline) across the five
//! server workloads, with the probe-only breakdown and — where the paper
//! had it (HHVM) — instrumentation-based PGO.
//!
//! Paper shapes to reproduce:
//! * CSSPGO delivers additional performance over AutoFDO on every workload
//!   (paper: +1–5%);
//! * probe-only CSSPGO contributes a substantial fraction of the full gain
//!   (paper: 38–78%);
//! * on HHVM, instrumentation PGO tops the chart and CSSPGO bridges a
//!   majority of the AutoFDO↔Instr gap (paper: >60%).

use csspgo_bench::{experiment_config, improvement_pct, par_map, run_variants, traffic_scale};
use csspgo_core::pipeline::PgoVariant;

fn main() {
    let cfg = experiment_config();
    let scale = traffic_scale();
    println!("# Fig. 6 — performance vs AutoFDO (positive = faster), scale={scale}");
    println!("| workload | AutoFDO cycles | probe-only Δ% | full CSSPGO Δ% | Instr PGO Δ% | probe share of gain |");
    println!("|---|---|---|---|---|---|");

    // Workload-level fan-out on top of run_variants' variant-level one;
    // rows come back in input order, so the report is deterministic.
    let workloads: Vec<_> = csspgo_workloads::server_workloads()
        .into_iter()
        .map(|w| w.scaled(scale))
        .collect();
    let rows = par_map(workloads, |w| {
        let outcomes = run_variants(
            &w,
            &[
                PgoVariant::AutoFdo,
                PgoVariant::CsspgoProbeOnly,
                PgoVariant::CsspgoFull,
                PgoVariant::Instr,
            ],
            &cfg,
        );
        let base = outcomes[&PgoVariant::AutoFdo].eval.cycles;
        let probe = improvement_pct(base, outcomes[&PgoVariant::CsspgoProbeOnly].eval.cycles);
        let full = improvement_pct(base, outcomes[&PgoVariant::CsspgoFull].eval.cycles);
        let instr = improvement_pct(base, outcomes[&PgoVariant::Instr].eval.cycles);
        let share = if full.abs() > 1e-9 {
            probe / full * 100.0
        } else {
            0.0
        };
        let mut lines = vec![format!(
            "| {} | {} | {probe:+.2} | {full:+.2} | {instr:+.2} | {share:.0}% |",
            w.name, base
        )];
        if w.name == "hhvm" && instr > 0.0 {
            let bridged = full / instr * 100.0;
            lines.push(format!(
                "|   ↳ hhvm gap bridged: CSSPGO covers {bridged:.0}% of the Instr-PGO gap (paper: >60%) | | | | | |"
            ));
        }
        lines
    });
    for lines in rows {
        for line in lines {
            println!("{line}");
        }
    }
}
