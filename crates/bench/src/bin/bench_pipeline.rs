//! Perf trajectory of the PGO cycle itself: per-stage wall times
//! (compile, simulate, correlate, pre-inline, serialize, deserialize,
//! inference, recompile, evaluate) for every server workload, written to
//! `BENCH_pipeline.json` so perf work across PRs has a measurable baseline.
//!
//! If a previous `BENCH_pipeline.json` exists at the output path, a
//! per-stage speedup table against it is printed before the file is
//! replaced — old-schema files (no serialize/deserialize/inference
//! columns) compare on the stages they do carry.
//!
//! `--gate <ratio>` turns the run into a regression gate: it fails (exit 1)
//! if any workload's `CSSPGO (full)` correlation takes more than `ratio`×
//! its `AutoFDO` correlation — the hot path this harness exists to watch.
//!
//! Every run also measures the instrumented variant under both counter
//! placements (`instr-full` / `instr-sptree` rows, carrying
//! `counter_sites` and `profile_cycles`): the overhead delta the
//! Ball–Larus spanning-tree placement buys over naive every-block
//! counting, at identical ground-truth profiles.
//!
//! `--drift` adds the fig6-style drifted-profile comparison: each
//! workload's profile is collected on the clean build while the optimized
//! build compiles a CFG-changed source, stale recovery salvages the
//! counts, and the cycle runs once with min-cost-flow inference and once
//! with the fixpoint heuristic. The rows (labeled `drift-*`) carry
//! `eval_cycles` and `cycles_retained_pct` — how much of the clean-profile
//! win over `-O2` each inference retained — plus the repair-effort
//! counters.
//!
//! Output path defaults to `BENCH_pipeline.json` in the working directory;
//! override with the `BENCH_PIPELINE_OUT` environment variable.

use csspgo_bench::{
    experiment_config, par_map, read_pipeline_bench, speedup_cell, traffic_scale,
    write_pipeline_bench, PipelineBenchRecord, PrevBenchRecord, BENCH_STAGES,
};
use csspgo_core::inference::InferenceMode;
use csspgo_core::pipeline::{run_pgo_cycle, run_pgo_cycle_drifted, PgoVariant, PipelineConfig};
use csspgo_core::stalematch::StaleMatching;
use csspgo_core::Workload;
use csspgo_opt::instrument::Placement;
use csspgo_workloads::drift;
use std::collections::HashMap;
use std::process::ExitCode;

/// Parses the optional `--gate <ratio>` argument.
fn gate_ratio(args: &[String]) -> Result<Option<f64>, String> {
    match args.iter().position(|a| a == "--gate") {
        None => Ok(None),
        Some(i) => {
            let raw = args.get(i + 1).ok_or("--gate needs a ratio")?;
            let ratio: f64 = raw.parse().map_err(|_| format!("bad --gate `{raw}`"))?;
            if ratio <= 0.0 || !ratio.is_finite() {
                return Err(format!("--gate must be a positive ratio, got {raw}"));
            }
            Ok(Some(ratio))
        }
    }
}

/// Prints the per-stage speedup table of this run against a previous one:
/// `previous_ms / current_ms` per stage plus the signed time delta
/// (ratios above 1.0 mean the stage got faster; regressions show a
/// negative percentage). Stages absent from the old file print `-`.
fn print_speedups(prev: &[PrevBenchRecord], records: &[PipelineBenchRecord]) {
    let by_key: HashMap<(&str, &str), &PrevBenchRecord> = prev
        .iter()
        .map(|r| ((r.workload.as_str(), r.variant.as_str()), r))
        .collect();
    println!("\n# Speedup vs previous run (old ms / new ms; >1.0 = faster, signed % delta)");
    let header: Vec<&str> = BENCH_STAGES
        .iter()
        .map(|s| s.trim_end_matches("_ms"))
        .collect();
    println!("| workload | variant | {} | total |", header.join(" | "));
    println!("|---|---|{}", "---|".repeat(BENCH_STAGES.len() + 1));
    let mut matched = 0usize;
    for r in records {
        let Some(p) = by_key.get(&(r.workload.as_str(), r.variant.as_str())) else {
            continue;
        };
        matched += 1;
        let mut cells = Vec::new();
        for stage in BENCH_STAGES.iter().chain(["total_ms"].iter()) {
            cells.push(speedup_cell(p.stage(stage), r.stage(stage)));
        }
        println!("| {} | {} | {} |", r.workload, r.variant, cells.join(" | "));
    }
    if matched == 0 {
        println!("(no (workload, variant) rows in common with the previous run)");
    }
}

/// Runs the drifted-profile inference comparison for every workload:
/// `-O2` and clean `CSSPGO (full)` anchor the retained-win scale, then the
/// CFG-drifted cycle runs under each inference mode with stale recovery.
fn run_drift_comparison(workloads: &[Workload], cfg: &PipelineConfig) -> Vec<PipelineBenchRecord> {
    let per_workload = par_map(workloads.to_vec(), |w| {
        let drifted_src = drift::change_cfg(&w.source);
        let o2 = run_pgo_cycle(&w, PgoVariant::O2, cfg)
            .unwrap_or_else(|e| panic!("{} / O2: {e}", w.name));
        let clean = run_pgo_cycle(&w, PgoVariant::CsspgoFull, cfg)
            .unwrap_or_else(|e| panic!("{} / clean: {e}", w.name));
        // Retained % is only meaningful when the clean profile actually
        // beats -O2 (it may not at small traffic scales); the drifted rows
        // then measure how much of that win survives, signed — a drifted
        // profile that makes the binary slower than -O2 goes negative.
        let clean_win = o2.eval.cycles as f64 - clean.eval.cycles as f64;
        let retained_pct = |cycles: u64| {
            (clean_win > 0.0).then(|| (o2.eval.cycles as f64 - cycles as f64) / clean_win * 100.0)
        };

        let mut clean_row =
            PipelineBenchRecord::labeled(&w.name, "drift-clean", &clean.stage_times)
                .with_eval_cycles(clean.eval.cycles);
        if let Some(p) = retained_pct(clean.eval.cycles) {
            clean_row = clean_row.with_retained(p);
        }
        let mut rows = vec![
            PipelineBenchRecord::labeled(&w.name, "drift-O2", &o2.stage_times)
                .with_eval_cycles(o2.eval.cycles),
            clean_row,
        ];
        for (label, mode) in [
            ("drift-mcf", InferenceMode::Mcf),
            ("drift-heuristic", InferenceMode::Heuristic),
        ] {
            let mut dcfg = cfg.clone();
            dcfg.annotate.stale_matching = StaleMatching::Recover;
            dcfg.annotate.inference = mode;
            let o = run_pgo_cycle_drifted(&w, PgoVariant::CsspgoFull, &dcfg, &drifted_src)
                .unwrap_or_else(|e| panic!("{} / {label}: {e}", w.name));
            let inf = o.annotate_stats.inference;
            let mut row = PipelineBenchRecord::labeled(&w.name, label, &o.stage_times)
                .with_stale(
                    o.annotate_stats.stale_dropped,
                    o.annotate_stats.stale_recovered,
                )
                .with_inference(inf.counts_adjusted, inf.flow_moved, inf.residual_cost)
                .with_eval_cycles(o.eval.cycles);
            if let Some(p) = retained_pct(o.eval.cycles) {
                row = row.with_retained(p);
            }
            let prov = o.annotate_stats.provenance;
            if prov.total() > 0 {
                let total = prov.total() as f64;
                row = row.with_provenance_pcts(
                    prov.stale_matched as f64 / total * 100.0,
                    prov.inferred as f64 / total * 100.0,
                );
            }
            rows.push(row);
        }
        rows
    });
    per_workload.into_iter().flatten().collect()
}

/// Prints the drifted-profile comparison table from the `drift-*` rows.
fn print_drift_table(records: &[PipelineBenchRecord]) {
    println!("\n# Drifted-profile inference comparison (change_cfg drift, stale recovery on)");
    println!("| workload | row | eval cycles | retained % | counts adjusted | flow moved | residual cost | salvaged % | inferred % |");
    println!("|---|---|---|---|---|---|---|---|---|");
    for r in records {
        let fmt_u = |v: Option<u64>| v.map_or_else(|| "-".to_string(), |x| x.to_string());
        let fmt_p = |v: Option<f64>| v.map_or_else(|| "-".to_string(), |p| format!("{p:.1}"));
        println!(
            "| {} | {} | {} | {} | {} | {} | {} | {} | {} |",
            r.workload,
            r.variant,
            fmt_u(r.eval_cycles),
            fmt_p(r.cycles_retained_pct),
            fmt_u(r.counts_adjusted),
            fmt_u(r.flow_moved),
            fmt_u(r.residual_cost),
            fmt_p(r.salvaged_weight_pct),
            fmt_p(r.inferred_weight_pct),
        );
    }
}

/// Runs the instrumented variant under both counter placements for every
/// workload: the overhead delta minimal (spanning-tree) placement buys
/// over naive every-block counting, at identical ground-truth profiles.
fn run_instrumentation_comparison(
    workloads: &[Workload],
    cfg: &PipelineConfig,
) -> Vec<PipelineBenchRecord> {
    let per_workload = par_map(workloads.to_vec(), |w| {
        let mut rows = Vec::new();
        for (label, placement) in [
            ("instr-full", Placement::Full),
            ("instr-sptree", Placement::SpanningTree),
        ] {
            let mut icfg = cfg.clone();
            icfg.instrument.placement = placement;
            let o = run_pgo_cycle(&w, PgoVariant::Instr, &icfg)
                .unwrap_or_else(|e| panic!("{} / {label}: {e}", w.name));
            rows.push(
                PipelineBenchRecord::labeled(&w.name, label, &o.stage_times)
                    .with_instrumentation(o.counter_sites as u64, o.profiling.cycles)
                    .with_eval_cycles(o.eval.cycles),
            );
        }
        rows
    });
    per_workload.into_iter().flatten().collect()
}

/// Prints the instrumentation-overhead table from the `instr-*` rows.
fn print_instrumentation_table(records: &[PipelineBenchRecord]) {
    println!("\n# Instrumentation overhead (full vs spanning-tree counter placement)");
    println!("| workload | row | counter sites | profiling cycles | eval cycles |");
    println!("|---|---|---|---|---|");
    for r in records {
        let fmt_u = |v: Option<u64>| v.map_or_else(|| "-".to_string(), |x| x.to_string());
        println!(
            "| {} | {} | {} | {} | {} |",
            r.workload,
            r.variant,
            fmt_u(r.counter_sites),
            fmt_u(r.profile_cycles),
            fmt_u(r.eval_cycles),
        );
    }
    let by_key: HashMap<(&str, &str), u64> = records
        .iter()
        .filter_map(|r| {
            r.counter_sites
                .map(|c| ((r.workload.as_str(), r.variant.as_str()), c))
        })
        .collect();
    let mut names: Vec<&str> = records.iter().map(|r| r.workload.as_str()).collect();
    names.dedup();
    for name in names {
        if let (Some(&full), Some(&sp)) = (
            by_key.get(&(name, "instr-full")),
            by_key.get(&(name, "instr-sptree")),
        ) {
            if full > 0 {
                println!(
                    "{name}: {sp} of {full} counters kept ({:.1}% fewer)",
                    (full - sp.min(full)) as f64 / full as f64 * 100.0
                );
            }
        }
    }
}

/// Applies the correlate-time gate; returns the offending lines.
fn gate_failures(records: &[PipelineBenchRecord], ratio: f64) -> Vec<String> {
    let full = PgoVariant::CsspgoFull.to_string();
    let base = PgoVariant::AutoFdo.to_string();
    let mut by_workload: HashMap<&str, (Option<f64>, Option<f64>)> = HashMap::new();
    for r in records {
        let slot = by_workload.entry(r.workload.as_str()).or_default();
        if r.variant == base {
            slot.0 = Some(r.correlate_ms);
        } else if r.variant == full {
            slot.1 = Some(r.correlate_ms);
        }
    }
    let mut failures = Vec::new();
    let mut names: Vec<&&str> = by_workload.keys().collect();
    names.sort();
    for name in names {
        if let (Some(autofdo), Some(csspgo)) = by_workload[*name] {
            if autofdo > 0.0 && csspgo > ratio * autofdo {
                failures.push(format!(
                    "{name}: CSSPGO-full correlate {csspgo:.1}ms > {ratio}x AutoFDO {autofdo:.1}ms"
                ));
            }
        }
    }
    failures
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let gate = match gate_ratio(&args) {
        Ok(g) => g,
        Err(e) => {
            eprintln!("bench_pipeline: {e}");
            return ExitCode::from(2);
        }
    };
    let with_drift = args.iter().any(|a| a == "--drift");
    let cfg = experiment_config();
    let scale = traffic_scale();
    let variants = [
        PgoVariant::AutoFdo,
        PgoVariant::CsspgoProbeOnly,
        PgoVariant::CsspgoFull,
    ];

    let workloads: Vec<_> = csspgo_workloads::server_workloads()
        .into_iter()
        .map(|w| w.scaled(scale))
        .collect();
    // Workload × variant fan-out: each pair is an independent PGO cycle.
    let pairs: Vec<_> = workloads
        .iter()
        .flat_map(|w| variants.iter().map(move |&v| (w.clone(), v)))
        .collect();
    let mut records: Vec<PipelineBenchRecord> = par_map(pairs, |(w, v)| {
        let o = run_pgo_cycle(&w, v, &cfg).unwrap_or_else(|e| panic!("{} / {v}: {e}", w.name));
        PipelineBenchRecord::new(&w.name, v, &o.stage_times)
    });

    println!("# Pipeline stage wall times (ms), scale={scale}");
    println!(
        "| workload | variant | compile | simulate | correlate | pre-inline \
         | serialize | deserialize | inference | recompile | evaluate | total |"
    );
    println!("|---|---|---|---|---|---|---|---|---|---|---|---|");
    for r in &records {
        println!(
            "| {} | {} | {:.1} | {:.1} | {:.1} | {:.1} | {:.2} | {:.2} | {:.2} | {:.1} | {:.1} | {:.1} |",
            r.workload,
            r.variant,
            r.compile_ms,
            r.simulate_ms,
            r.correlate_ms,
            r.preinline_ms,
            r.serialize_ms,
            r.deserialize_ms,
            r.inference_ms,
            r.recompile_ms,
            r.evaluate_ms,
            r.total_ms
        );
    }

    let instr_rows = run_instrumentation_comparison(&workloads, &cfg);
    print_instrumentation_table(&instr_rows);
    records.extend(instr_rows);

    if with_drift {
        let drift_rows = run_drift_comparison(&workloads, &cfg);
        print_drift_table(&drift_rows);
        records.extend(drift_rows);
    }

    let path =
        std::env::var("BENCH_PIPELINE_OUT").unwrap_or_else(|_| "BENCH_pipeline.json".to_string());
    if let Some(prev) = read_pipeline_bench(&path) {
        print_speedups(&prev, &records);
    }
    write_pipeline_bench(&path, &records).expect("write pipeline bench records");
    println!("\nwrote {} records to {path}", records.len());

    if let Some(ratio) = gate {
        let failures = gate_failures(&records, ratio);
        if !failures.is_empty() {
            eprintln!("\ncorrelate-time gate FAILED (ratio {ratio}):");
            for f in &failures {
                eprintln!("  {f}");
            }
            return ExitCode::FAILURE;
        }
        println!("correlate-time gate passed (ratio {ratio})");
    }
    ExitCode::SUCCESS
}
