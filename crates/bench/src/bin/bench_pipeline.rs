//! Perf trajectory of the PGO cycle itself: per-stage wall times
//! (compile, simulate, correlate, pre-inline, recompile, evaluate) for
//! every server workload, written to `BENCH_pipeline.json` so perf work
//! across PRs has a measurable baseline.
//!
//! Output path defaults to `BENCH_pipeline.json` in the working directory;
//! override with the `BENCH_PIPELINE_OUT` environment variable.

use csspgo_bench::{
    experiment_config, par_map, traffic_scale, write_pipeline_bench, PipelineBenchRecord,
};
use csspgo_core::pipeline::{run_pgo_cycle, PgoVariant};

fn main() {
    let cfg = experiment_config();
    let scale = traffic_scale();
    let variants = [
        PgoVariant::AutoFdo,
        PgoVariant::CsspgoProbeOnly,
        PgoVariant::CsspgoFull,
    ];

    let workloads: Vec<_> = csspgo_workloads::server_workloads()
        .into_iter()
        .map(|w| w.scaled(scale))
        .collect();
    // Workload × variant fan-out: each pair is an independent PGO cycle.
    let pairs: Vec<_> = workloads
        .iter()
        .flat_map(|w| variants.iter().map(move |&v| (w.clone(), v)))
        .collect();
    let records: Vec<PipelineBenchRecord> = par_map(pairs, |(w, v)| {
        let o = run_pgo_cycle(&w, v, &cfg).unwrap_or_else(|e| panic!("{} / {v}: {e}", w.name));
        PipelineBenchRecord::new(&w.name, v, &o.stage_times)
    });

    println!("# Pipeline stage wall times (ms), scale={scale}");
    println!("| workload | variant | compile | simulate | correlate | pre-inline | recompile | evaluate | total |");
    println!("|---|---|---|---|---|---|---|---|---|");
    for r in &records {
        println!(
            "| {} | {} | {:.1} | {:.1} | {:.1} | {:.1} | {:.1} | {:.1} | {:.1} |",
            r.workload,
            r.variant,
            r.compile_ms,
            r.simulate_ms,
            r.correlate_ms,
            r.preinline_ms,
            r.recompile_ms,
            r.evaluate_ms,
            r.total_ms
        );
    }

    let path =
        std::env::var("BENCH_PIPELINE_OUT").unwrap_or_else(|_| "BENCH_pipeline.json".to_string());
    write_pipeline_bench(&path, &records).expect("write pipeline bench records");
    println!("\nwrote {} records to {path}", records.len());
}
