//! The release train: end-to-end drift validation across successive
//! releases.
//!
//! Rolls each workload through an N-release source lineage
//! ([`drift::release_chain`]: split/merge refactors, feature-flag flips,
//! dependency bumps, renames, comment and CFG churn) while live traffic
//! flows through a `FleetService` the whole train — each release serves
//! stable + candidate as a two-way traffic split of one tenant, the
//! drift watchdog schedules recover-mode MCF refreshes, and a canary
//! gate (cycle tolerance + behaviour hash against `-O2`) decides
//! promotion.
//!
//! Per release the candidate built from the *live* stable profile is
//! placed between two anchors:
//!
//! * **oracle** — a fresh profile collected on the new source itself
//!   (the best any refresh could do);
//! * **floor** — the release-0 profile applied with stale matching off
//!   (never refreshing; the paper's source-drift failure mode).
//!
//! The train-wide retention curve (`Σ(o2−pgo) / Σ(o2−oracle)`) is the
//! headline number: the recover+MCF train must retain strictly more of
//! the oracle's win than the never-refresh floor.
//!
//! Flags: `--releases N` (train length, default 5) and
//! `--min-retention PCT` (exit non-zero if any train's retention falls
//! below — the CI gate). Output goes to `BENCH_release_train.json`
//! (override with `BENCH_RELEASE_TRAIN_OUT`); `CSSPGO_SCALE` scales
//! traffic as in the other bench binaries.

use csspgo_bench::{row, traffic_scale};
use csspgo_core::fleet::FleetConfig;
use csspgo_core::pipeline::PipelineConfig;
use csspgo_core::release_train::{run_release_train, ReleaseSpec, TrainBenchDoc, TrainConfig};
use csspgo_core::stream::StreamConfig;
use csspgo_core::Workload;
use csspgo_workloads::{ad_finder, drift, haas, phase_shifted, tenant_traffic_mix};

/// Traffic calls per epoch (matches `profile_fleet`).
const EPOCH_CALLS: usize = 4;
/// PMU drain granularity.
const BATCH_SAMPLES: usize = 256;
/// Drift verdict threshold (same rationale as `profile_fleet`).
const DRIFT_THRESHOLD: f64 = 0.8;

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn train_config() -> TrainConfig {
    let pipeline = PipelineConfig::builder()
        .stream(StreamConfig {
            drift_threshold: DRIFT_THRESHOLD,
            ..StreamConfig::default()
        })
        .build()
        .expect("train pipeline config is valid");
    let fleet = FleetConfig::builder()
        .pipeline(pipeline)
        .epoch_calls(EPOCH_CALLS)
        .batch_samples(BATCH_SAMPLES)
        .build()
        .expect("train fleet config is valid");
    TrainConfig {
        fleet,
        ..TrainConfig::default()
    }
}

/// The train's release lineage for one workload.
fn releases_for(w: &Workload, n: usize) -> Vec<ReleaseSpec> {
    let keep = [w.entry.as_str()];
    drift::release_chain(&w.source, n, &keep)
        .into_iter()
        .enumerate()
        .map(|(i, (mutator, source))| ReleaseSpec::new(format!("r{}", i + 1), mutator, source))
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let releases: usize = arg_value(&args, "--releases")
        .map(|v| v.parse().expect("--releases takes a count"))
        .unwrap_or(5);
    let min_retention: Option<f64> =
        arg_value(&args, "--min-retention").map(|v| v.parse().expect("--min-retention takes %"));

    let scale = traffic_scale();
    let cfg = train_config();

    // Two trains: a steady tenant-mixed server workload, and a
    // phase-shifted drifting one whose evaluation mix diverges from the
    // steady-state tail (the watchdog's bread and butter). Both are
    // workloads where the fresh profile genuinely beats -O2, so the
    // oracle win that retention is measured against is real.
    let workloads = vec![
        tenant_traffic_mix(&ad_finder().scaled(scale), 7),
        // Both arguments shifted: evaluation traffic collapses onto one
        // expression root (same recipe as `profile_fleet`'s drifting
        // tenant), pushing the drift probe's overlap under the verdict
        // threshold so the watchdog genuinely fires along the train.
        phase_shifted(&phase_shifted(&haas().scaled(scale), 1), 0),
    ];

    let mut trains = Vec::new();
    for w in &workloads {
        let specs = releases_for(w, releases);
        let report = run_release_train(w, &specs, &cfg)
            .unwrap_or_else(|e| panic!("{} release train failed: {e}", w.name));

        println!("\n# {} — {}-release train", report.workload, releases);
        println!(
            "baseline {} cycles; {} promoted / {} rejected; watchdog fired on {} releases, {} refreshes",
            report.baseline_cycles,
            report.promoted,
            report.rejected,
            report.watchdog_fires,
            report.refreshes
        );
        println!("| release | mutator | o2 | oracle | pgo | floor | retained% | floor% | canary |");
        println!("|---|---|---|---|---|---|---|---|---|");
        for r in &report.releases {
            let fmt_pct =
                |p: Option<f64>| p.map(|v| format!("{v:+.1}")).unwrap_or_else(|| "-".into());
            println!(
                "{}",
                row(&[
                    r.label.clone(),
                    r.mutator.clone(),
                    r.o2_cycles.to_string(),
                    r.oracle_cycles.to_string(),
                    r.pgo_cycles.to_string(),
                    r.floor_cycles.to_string(),
                    fmt_pct(r.retained_pct),
                    fmt_pct(r.floor_retained_pct),
                    if r.canary.promoted {
                        "promoted"
                    } else {
                        "REJECTED"
                    }
                    .to_string(),
                ])
            );
        }
        println!(
            "train retention: {:+.1}% (never-refresh floor {:+.1}%)",
            report.train_retention_pct, report.floor_retention_pct
        );
        // Short trains can end before cumulative drift wrecks the frozen
        // floor profile (the early releases only perturb a few
        // checksums), so the strict separation claim is only meaningful
        // once the train is long enough for churn to compound.
        if releases >= 5 {
            assert!(
                report.train_retention_pct > report.floor_retention_pct,
                "{}: recover+MCF train must retain strictly more of the oracle win \
                 than the never-refresh floor ({:+.2}% vs {:+.2}%)",
                report.workload,
                report.train_retention_pct,
                report.floor_retention_pct
            );
        }
        trains.push(report);
    }

    let doc = TrainBenchDoc::new(trains);
    let path = std::env::var("BENCH_RELEASE_TRAIN_OUT")
        .unwrap_or_else(|_| "BENCH_release_train.json".to_string());
    std::fs::write(&path, doc.to_json()).expect("write release_train bench report");
    println!("\nwrote {} trains to {path}", doc.trains.len());

    if let Some(min) = min_retention {
        for t in &doc.trains {
            if t.train_retention_pct < min {
                eprintln!(
                    "FAIL: {} train retention {:+.2}% below the --min-retention {min}% gate",
                    t.workload, t.train_retention_pct
                );
                std::process::exit(1);
            }
        }
        println!("retention gate: all trains ≥ {min}%");
    }
}
