//! **§IV.D**: the client workload (Clang-bootstrap analogue).
//!
//! Paper shapes: CSSPGO +2.8% performance / −5.5% size over AutoFDO; Instr
//! PGO +6.6% / −34%; the sampling↔instrumentation gap is *wider* than on
//! server workloads because one short training run covers far less of the
//! executed code than instrumentation does. The coverage ratio is printed
//! to make that mechanism visible.

use csspgo_bench::{
    experiment_config, improvement_pct, run_variants, size_delta_pct, traffic_scale,
};
use csspgo_core::pipeline::PgoVariant;

fn main() {
    let cfg = experiment_config();
    let scale = traffic_scale();
    println!("# §IV.D — client workload (compiler bootstrap analogue), scale={scale}");
    let w = csspgo_workloads::client_compiler().scaled(scale);
    let o = run_variants(
        &w,
        &[
            PgoVariant::AutoFdo,
            PgoVariant::CsspgoProbeOnly,
            PgoVariant::CsspgoFull,
            PgoVariant::Instr,
        ],
        &cfg,
    );
    let base = &o[&PgoVariant::AutoFdo];
    println!("| variant | perf vs AutoFDO | text size vs AutoFDO | functions w/ profile |");
    println!("|---|---|---|---|");
    for v in [
        PgoVariant::CsspgoProbeOnly,
        PgoVariant::CsspgoFull,
        PgoVariant::Instr,
    ] {
        println!(
            "| {v} | {:+.2}% | {:+.2}% | {} |",
            improvement_pct(base.eval.cycles, o[&v].eval.cycles),
            size_delta_pct(base.sections.text, o[&v].sections.text),
            o[&v].quality_counts.len(),
        );
    }
    // Coverage: fraction of functions the sampling profile reached vs the
    // instrumentation profile (which reaches everything executed).
    let sampled = o[&PgoVariant::CsspgoFull].quality_counts.len() as f64;
    let exact = o[&PgoVariant::Instr].quality_counts.len() as f64;
    println!(
        "\nsampling coverage: {sampled}/{exact} functions = {:.0}% (the paper's client-workload ceiling)",
        sampled / exact * 100.0
    );
}
