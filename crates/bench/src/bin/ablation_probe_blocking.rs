//! **Ablation (paper §III.A "flexible framework")**: how strongly probes
//! block optimizations trades run-time overhead against profile accuracy.
//!
//! The paper: "If an implementation can tolerate higher run-time overhead,
//! it can choose to make pseudo-probe a stronger optimization barrier to
//! better preserve original control flow and vice versa. ... we fine-tune a
//! few critical optimizations, including if-convert, machine sink and
//! instruction scheduling, to be unblocked by pseudo-probe."

use csspgo_bench::{experiment_config, run_variants, traffic_scale};
use csspgo_core::overlap::program_overlap;
use csspgo_core::pipeline::{build_and_run, PgoVariant};
use csspgo_ir::probe::ProbeConfig;

fn main() {
    let mut cfg = experiment_config();
    let scale = traffic_scale();
    println!("# Ablation — probe optimization-blocking strength (hhvm), scale={scale}");
    let w = csspgo_workloads::hhvm().scaled(scale);

    println!(
        "| probe tuning | probed binary cycles | overhead vs unprobed | block overlap vs instr |"
    );
    println!("|---|---|---|---|");
    let (plain, _) = build_and_run(&w, false, &cfg).expect("plain build");
    for (name, probe_cfg) in [
        ("low-overhead (production)", ProbeConfig::low_overhead()),
        ("high-accuracy (barrier)", ProbeConfig::high_accuracy()),
    ] {
        cfg.opt.probe = probe_cfg;
        let (probed, _) = build_and_run(&w, true, &cfg).expect("probed build");
        let overhead = (probed.cycles as f64 - plain.cycles as f64) / plain.cycles as f64 * 100.0;
        let o = run_variants(&w, &[PgoVariant::CsspgoFull, PgoVariant::Instr], &cfg);
        let overlap = program_overlap(
            &o[&PgoVariant::CsspgoFull].quality_counts,
            &o[&PgoVariant::Instr].quality_counts,
        ) * 100.0;
        println!(
            "| {name} | {} | {overhead:+.3}% | {overlap:.1}% |",
            probed.cycles
        );
    }
}
