//! **Table I**: HHVM profile quality (block-overlap degree against
//! instrumentation ground truth) and profiling overhead.
//!
//! Paper numbers: block overlap AutoFDO 88.2% / CSSPGO 92.3% / Instr 100%;
//! profiling overhead 0% / 0.04% / 73.06%.
//!
//! Overlap is computed on the *common fresh CFG* (no inline replay) so that
//! all variants are compared block-for-block; profiling overhead compares
//! each variant's profiling-run cycles with AutoFDO's (whose profiling
//! binary is the plain production build).

use csspgo_bench::{experiment_config, run_variants, traffic_scale};
use csspgo_core::overlap::program_overlap;
use csspgo_core::pipeline::PgoVariant;

fn main() {
    let cfg = experiment_config();
    let scale = traffic_scale();
    println!("# Table I — HHVM profile quality and profiling overhead, scale={scale}");
    let w = csspgo_workloads::hhvm().scaled(scale);
    let o = run_variants(
        &w,
        &[
            PgoVariant::AutoFdo,
            PgoVariant::CsspgoProbeOnly,
            PgoVariant::CsspgoFull,
            PgoVariant::Instr,
        ],
        &cfg,
    );
    let gt = &o[&PgoVariant::Instr].quality_counts;
    let base_cycles = o[&PgoVariant::AutoFdo].profiling.cycles as f64;

    println!("| metric | AutoFDO | CSSPGO (probe-only) | CSSPGO (full) | Instr PGO |");
    println!("|---|---|---|---|---|");
    let overlap = |v: PgoVariant| program_overlap(&o[&v].quality_counts, gt) * 100.0;
    println!(
        "| block overlap | {:.1}% | {:.1}% | {:.1}% | {:.1}% |",
        overlap(PgoVariant::AutoFdo),
        overlap(PgoVariant::CsspgoProbeOnly),
        overlap(PgoVariant::CsspgoFull),
        overlap(PgoVariant::Instr),
    );
    let ovh = |v: PgoVariant| (o[&v].profiling.cycles as f64 - base_cycles) / base_cycles * 100.0;
    println!(
        "| profiling overhead | 0.00% | {:+.2}% | {:+.2}% | {:+.2}% |",
        ovh(PgoVariant::CsspgoProbeOnly),
        ovh(PgoVariant::CsspgoFull),
        ovh(PgoVariant::Instr),
    );
}
