//! **Fig. 7**: code size of probe-only and full CSSPGO relative to AutoFDO.
//!
//! Paper shapes: CSSPGO produces *smaller* text than AutoFDO on most
//! workloads, and full CSSPGO (with the more selective pre-inliner) is
//! smaller than probe-only; one workload (HaaS) stays within ±1%.

use csspgo_bench::{experiment_config, par_map, run_variants, size_delta_pct, traffic_scale};
use csspgo_core::pipeline::PgoVariant;

fn main() {
    let cfg = experiment_config();
    let scale = traffic_scale();
    println!("# Fig. 7 — text size vs AutoFDO (negative = smaller), scale={scale}");
    println!("| workload | AutoFDO text | probe-only Δ% | full CSSPGO Δ% |");
    println!("|---|---|---|---|");
    let workloads: Vec<_> = csspgo_workloads::server_workloads()
        .into_iter()
        .map(|w| w.scaled(scale))
        .collect();
    let rows = par_map(workloads, |w| {
        let o = run_variants(
            &w,
            &[
                PgoVariant::AutoFdo,
                PgoVariant::CsspgoProbeOnly,
                PgoVariant::CsspgoFull,
            ],
            &cfg,
        );
        let base = o[&PgoVariant::AutoFdo].sections.text;
        let probe = size_delta_pct(base, o[&PgoVariant::CsspgoProbeOnly].sections.text);
        let full = size_delta_pct(base, o[&PgoVariant::CsspgoFull].sections.text);
        format!("| {} | {} | {probe:+.2} | {full:+.2} |", w.name, base)
    });
    for line in rows {
        println!("{line}");
    }
}
