//! **§III.A drift experiment**: a comment-only source change between the
//! profiling build and the optimizing build.
//!
//! Paper: "a minor change in the source code such as adding or removing a
//! program comment can cause location of subsequent code to shift ... we
//! have observed minor source drift causing 8% performance loss for a
//! server workload. This problem is mitigated with pseudo-instrumentation"
//! (CFG checksums survive comment edits).
//!
//! Also exercised: a CFG-changing edit, where CSSPGO must *reject* the
//! stale profile outright instead of mis-applying it.

use csspgo_bench::{experiment_config, improvement_pct, traffic_scale};
use csspgo_core::pipeline::{run_pgo_cycle, run_pgo_cycle_drifted, PgoVariant};
use csspgo_workloads::drift;

fn main() {
    let cfg = experiment_config();
    let scale = traffic_scale();
    println!("# §III.A — source-drift resilience, scale={scale}");
    let w = csspgo_workloads::ad_retriever().scaled(scale);
    let commented = drift::insert_body_comments(&w.source);
    let cfg_changed = drift::change_cfg(&w.source);

    println!("| variant | clean cycles | comment-drift cycles | drift penalty % | stale fns (comment) | stale fns (CFG change) |");
    println!("|---|---|---|---|---|---|");
    for v in [PgoVariant::AutoFdo, PgoVariant::CsspgoFull] {
        let clean = run_pgo_cycle(&w, v, &cfg).expect("clean cycle");
        let drifted = run_pgo_cycle_drifted(&w, v, &cfg, &commented).expect("drifted cycle");
        let broken = run_pgo_cycle_drifted(&w, v, &cfg, &cfg_changed).expect("cfg-drifted cycle");
        let penalty = -improvement_pct(clean.eval.cycles, drifted.eval.cycles);
        println!(
            "| {v} | {} | {} | {penalty:+.2} | {} | {} |",
            clean.eval.cycles,
            drifted.eval.cycles,
            drifted.annotate_stats.stale_total(),
            broken.annotate_stats.stale_total(),
        );
    }
    println!("\n(paper: AutoFDO lost 8% under comment drift; CSSPGO is unaffected and");
    println!(" detects CFG-changing drift via checksum mismatch instead of mis-annotating)");
}
