//! **Fig. 9**: size of the pseudo-probe metadata section, as a percentage
//! of total binary size (text + debug info under `-g2`), compared with the
//! debug-info section itself.
//!
//! Paper shape: probe metadata averages ~25% of the binary; debug info is
//! of comparable magnitude. The metadata is self-contained and never loaded
//! at run time.

use csspgo_bench::{experiment_config, traffic_scale};
use csspgo_codegen::lower_module;

fn main() {
    let cfg = experiment_config();
    let scale = traffic_scale();
    let _ = scale;
    println!("# Fig. 9 — metadata size as % of total binary size");
    println!(
        "| workload | text | debug info | probe metadata | probe % of total | debug % of total |"
    );
    println!("|---|---|---|---|---|---|");
    let mut probe_pcts = Vec::new();
    for w in csspgo_workloads::server_workloads() {
        let mut m = csspgo_lang::compile(&w.source, &w.name).expect("compiles");
        csspgo_opt::discriminators::run(&mut m);
        csspgo_opt::probes::run(&mut m);
        csspgo_opt::run_pipeline(&mut m, &cfg.opt);
        let b = lower_module(&m, &cfg.codegen);
        let s = b.sections;
        let total = s.total() as f64;
        let probe_pct = s.pseudo_probe as f64 / total * 100.0;
        let debug_pct = s.debug_line as f64 / total * 100.0;
        probe_pcts.push(probe_pct);
        println!(
            "| {} | {} | {} | {} | {probe_pct:.1}% | {debug_pct:.1}% |",
            w.name, s.text, s.debug_line, s.pseudo_probe
        );
    }
    let avg = probe_pcts.iter().sum::<f64>() / probe_pcts.len() as f64;
    println!("\naverage probe-metadata share: {avg:.1}% (paper: ~25%)");
}
