//! **§III.B missing-frame inference**: tail-call frame recovery rate.
//!
//! Paper: "In practice it is observed that more than two-thirds of the
//! missing tail call frames can be recovered."

use csspgo_bench::{experiment_config, traffic_scale};
use csspgo_core::pipeline::{run_pgo_cycle, PgoVariant};

fn main() {
    let cfg = experiment_config();
    let scale = traffic_scale();
    println!("# §III.B — tail-call missing-frame recovery, scale={scale}");
    println!("| workload | recovered frames | failed gaps | recovery rate |");
    println!("|---|---|---|---|");
    for w in csspgo_workloads::server_workloads() {
        let w = w.scaled(scale);
        let o = run_pgo_cycle(&w, PgoVariant::CsspgoFull, &cfg).expect("cycle runs");
        let s = o.infer_stats;
        let total = s.recovered + s.failed;
        let rate = if total > 0 {
            s.recovered as f64 / total as f64 * 100.0
        } else {
            100.0
        };
        println!(
            "| {} | {} | {} | {rate:.0}% |",
            w.name, s.recovered, s.failed
        );
    }
    println!("\n(paper: > 2/3 recovered)");
}
