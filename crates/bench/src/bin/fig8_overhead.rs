//! **Fig. 8**: run-time overhead of pseudo-instrumentation.
//!
//! Two identical `-O2` builds — one with pseudo-probes, one without — run
//! the same traffic. Paper shape: the delta is within noise for every
//! workload (and occasionally *negative*: "this can happen when the
//! inserted pseudo-probes block undesirable optimizations"). Contrast with
//! the instrumented binary's slowdown (the 73% of Table I).

use csspgo_bench::{experiment_config, par_map, traffic_scale};
use csspgo_core::pipeline::build_and_run;

fn main() {
    let cfg = experiment_config();
    let scale = traffic_scale();
    println!("# Fig. 8 — pseudo-instrumentation run-time overhead, scale={scale}");
    println!("| workload | no probes (cycles) | probes (cycles) | overhead % |");
    println!("|---|---|---|---|");
    let workloads: Vec<_> = csspgo_workloads::server_workloads()
        .into_iter()
        .map(|w| w.scaled(scale))
        .collect();
    let rows = par_map(workloads, |w| {
        // The probe/no-probe builds of one workload are independent too.
        let ((plain, _), (probed, _)) = rayon::join(
            || build_and_run(&w, false, &cfg).expect("plain build runs"),
            || build_and_run(&w, true, &cfg).expect("probed build runs"),
        );
        let overhead = (probed.cycles as f64 - plain.cycles as f64) / plain.cycles as f64 * 100.0;
        format!(
            "| {} | {} | {} | {overhead:+.3} |",
            w.name, plain.cycles, probed.cycles
        )
    });
    for line in rows {
        println!("{line}");
    }
}
