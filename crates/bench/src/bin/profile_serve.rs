//! The streaming profile-aggregation service: drives each server workload
//! as *continuous* traffic through the library fleet service
//! ([`FleetService`]) — one single-version tenant per workload, the
//! deployment mode the paper's CSSPGO runs in (AlwaysOn-style collection,
//! periodic profile refreshes) rather than a one-shot batch cycle.
//!
//! This binary is a thin CLI wrapper: all serving logic (calibration
//! epoch, steady-state PMU draining, mid-stream snapshot self-check,
//! drift probe, bounded-queue refreshes) lives in `csspgo_core::fleet`.
//! The wrapper only builds the tenant specs, maps [`FleetEvent`]s onto the
//! `BENCH_pipeline.json` record shape (variant column = `epoch-N` /
//! `drift-probe` / `refresh`), and writes `BENCH_profile_serve.json`
//! (override with `BENCH_PROFILE_SERVE_OUT`).
//!
//! The snapshot self-check persists through the binary `binprof` wire
//! format by default; `CSSPGO_SNAPSHOT_FORMAT=text` selects the
//! human-readable debug format (unknown values warn and fall back).

use csspgo_bench::{
    snapshot_format_from_env, traffic_scale, write_pipeline_bench, PipelineBenchRecord,
};
use csspgo_core::fleet::{
    FleetBinaries, FleetConfig, FleetEvent, FleetService, TenantId, TenantSpec,
};
use csspgo_core::pipeline::PipelineConfig;
use csspgo_workloads::drift;
use std::collections::HashMap;

/// Traffic calls per epoch.
const EPOCH_CALLS: usize = 4;
/// PMU drain granularity: samples pulled off the machine per batch.
const BATCH_SAMPLES: usize = 256;

fn main() {
    let pipeline = PipelineConfig::builder()
        .build()
        .expect("default service config is valid");
    let trim_threshold = pipeline.trim_threshold;
    let cfg = FleetConfig::builder()
        .pipeline(pipeline)
        .epoch_calls(EPOCH_CALLS)
        .batch_samples(BATCH_SAMPLES)
        .snapshot_format(snapshot_format_from_env())
        .build()
        .expect("default fleet config is valid");
    let scale = traffic_scale();

    // One single-version tenant per server workload; a drift refresh
    // rebuilds against cosmetically-changed source (the stale-profile
    // path a service living off periodic refreshes exercises).
    let specs: Vec<TenantSpec> = csspgo_workloads::server_workloads()
        .into_iter()
        .enumerate()
        .map(|(i, w)| {
            let mut spec = TenantSpec::single_version(TenantId(i as u32), w.scaled(scale));
            spec.refresh_source = Some(drift::insert_body_comments(&spec.workload.source));
            spec
        })
        .collect();
    let names: HashMap<TenantId, String> = specs
        .iter()
        .map(|s| (s.id, s.workload.name.clone()))
        .collect();

    let binaries = FleetBinaries::compile(&specs, &cfg)
        .unwrap_or_else(|e| panic!("fleet compile failed: {e}"));
    let mut service = FleetService::new(&binaries, cfg);
    let run = service
        .run()
        .unwrap_or_else(|e| panic!("fleet serve failed: {e}"));

    let mut records = Vec::new();
    for event in &run.events {
        match event {
            FleetEvent::Epoch(e) => {
                records.push(PipelineBenchRecord::labeled(
                    &e.workload,
                    &e.label,
                    &e.stage_times,
                ));
                println!(
                    "{:>16} {:>11}: {:6} samples  {:7} nodes  overlap {:.3}{}",
                    e.workload,
                    e.label,
                    e.summary.samples,
                    e.summary.nodes_cumulative,
                    e.summary.overlap,
                    if e.summary.stale { "  STALE" } else { "" }
                );
            }
            FleetEvent::SnapshotChecked {
                tenant,
                format,
                bytes,
                ..
            } => {
                println!(
                    "{:>16} {:>11}: {format} {bytes} bytes, restores bit-identical",
                    names[tenant], "snapshot"
                );
            }
            FleetEvent::Refresh(e) => {
                records.push(
                    PipelineBenchRecord::labeled(&e.workload, "refresh", &e.stage_times)
                        .with_stale(e.stale_dropped, e.stale_recovered),
                );
                println!(
                    "{:>16} {:>11}: drift-triggered recompile, eval {} cycles, \
                     {} stale dropped / {} recovered",
                    e.workload, "refresh", e.eval_cycles, e.stale_dropped, e.stale_recovered
                );
            }
            FleetEvent::RefreshDropped { tenant, .. } => {
                println!(
                    "{:>16} {:>11}: refresh dropped at the bounded queue",
                    names[tenant], "refresh"
                );
            }
        }
    }

    for (id, version) in service.registry() {
        let agg = service
            .aggregator(id, &version)
            .expect("registry entries resolve");
        println!(
            "{:>16} {:>11}: {} epochs, {} samples, probe profile total {}",
            names[&id],
            "final",
            agg.epochs_sealed(),
            agg.total_samples(),
            agg.to_probe_profile(trim_threshold).total()
        );
    }

    let path = std::env::var("BENCH_PROFILE_SERVE_OUT")
        .unwrap_or_else(|_| "BENCH_profile_serve.json".to_string());
    write_pipeline_bench(&path, &records).expect("write profile_serve bench records");
    println!("\nwrote {} records to {path}", records.len());
}
