//! The streaming profile-aggregation service: drives each server workload
//! as *continuous* traffic, feeding PMU sample batches into a
//! [`StreamAggregator`] epoch by epoch — the deployment mode the paper's
//! CSSPGO runs in (AlwaysOn-style collection, periodic profile refreshes)
//! rather than a one-shot batch cycle.
//!
//! Per workload the service:
//!
//! 1. builds the probed profiling binary and runs a *calibration* epoch to
//!    pin the tail-call graph;
//! 2. serves the training traffic in epochs, draining the PMU in bounded
//!    batches and sealing each epoch into the cumulative profile;
//! 3. snapshot→restore round-trips the aggregator mid-stream — through the
//!    binary `binprof` wire format by default (`CSSPGO_SNAPSHOT_FORMAT=text`
//!    selects the human-readable debug format) — and verifies the resumed
//!    state matches (the epoch invariant, live);
//! 4. runs the evaluation traffic as a final epoch: if its probe-weight
//!    overlap drops below the drift threshold, the profile is stale and
//!    the service triggers a recompilation through the existing
//!    [`run_pgo_cycle_drifted`] path.
//!
//! Per-epoch ingest timings are emitted in the `BENCH_pipeline.json`
//! record shape (variant column = `epoch-N` / `refresh`), written to
//! `BENCH_profile_serve.json` (override with `BENCH_PROFILE_SERVE_OUT`).

use csspgo_bench::{traffic_scale, write_pipeline_bench, PipelineBenchRecord};
use csspgo_core::pipeline::{run_pgo_cycle_drifted, PgoVariant, PipelineConfig};
use csspgo_core::ranges::RangeCounts;
use csspgo_core::stalematch::StaleMatching;
use csspgo_core::stream::StreamAggregator;
use csspgo_core::tailcall::TailCallGraph;
use csspgo_core::Workload;
use csspgo_sim::{Machine, SimConfig};
use csspgo_workloads::drift;
use std::time::Instant;

/// Traffic calls per epoch.
const EPOCH_CALLS: usize = 4;
/// PMU drain granularity: samples pulled off the machine per batch.
const BATCH_SAMPLES: usize = 256;

fn ms_since(t: Instant) -> f64 {
    t.elapsed().as_secs_f64() * 1e3
}

fn sim_config(cfg: &PipelineConfig) -> SimConfig {
    SimConfig {
        lbr_size: cfg.lbr_size,
        pebs: cfg.pebs,
        sample_period: cfg.sample_period,
        seed: cfg.seed,
        max_steps: cfg.max_steps,
        ..SimConfig::default()
    }
}

/// One workload served end to end; returns its bench records.
fn serve(workload: &Workload, cfg: &PipelineConfig) -> Vec<PipelineBenchRecord> {
    let mut records = Vec::new();

    // ---------- probed profiling build ----------
    let t = Instant::now();
    let mut module = csspgo_lang::compile(&workload.source, &workload.name)
        .unwrap_or_else(|e| panic!("{}: {e}", workload.name));
    csspgo_opt::discriminators::run(&mut module);
    csspgo_opt::probes::run(&mut module);
    csspgo_opt::run_pipeline(&mut module, &cfg.opt);
    let binary = csspgo_codegen::lower_module(&module, &cfg.codegen);
    let compile_ms = ms_since(t);

    let mut machine = Machine::new(&binary, sim_config(cfg));
    for (name, values) in &workload.setup {
        machine.set_global(name, values);
    }

    // ---------- calibration epoch: pin the tail-call graph ----------
    let calib = workload.train_calls.iter().take(EPOCH_CALLS);
    let t = Instant::now();
    for args in calib.clone() {
        machine
            .call(&workload.entry, args)
            .unwrap_or_else(|e| panic!("{}: {e}", workload.name));
    }
    let calib_traffic_ms = ms_since(t);
    let calib_samples = machine.take_samples();
    let mut calib_rc = RangeCounts::default();
    calib_rc.add_samples(&binary, &calib_samples);
    let graph = TailCallGraph::build(&binary, &calib_rc);

    let mut agg =
        StreamAggregator::with_tail_graph(&binary, cfg.stream.clone(), cfg.ingest_shards, graph);
    agg.push_batch(calib_samples)
        .unwrap_or_else(|e| panic!("{}: {e}", workload.name));
    let summary = agg.seal_epoch();
    let mut epoch_record = |label: &str, traffic_ms: f64, s: &csspgo_core::EpochSummary| {
        let mut times = s.stage_times(traffic_ms);
        times.compile_ms = if s.epoch == 0 { compile_ms } else { 0.0 };
        records.push(PipelineBenchRecord::labeled(&workload.name, label, &times));
        println!(
            "{:>16} {label:>9}: {:6} samples  {:7} nodes  overlap {:.3}{}",
            workload.name,
            s.samples,
            s.nodes_cumulative,
            s.overlap,
            if s.stale { "  STALE" } else { "" }
        );
    };
    epoch_record("epoch-0", calib_traffic_ms, &summary);

    // ---------- steady-state epochs over the remaining traffic ----------
    let mut snapshot_checked = false;
    for (i, calls) in workload.train_calls[EPOCH_CALLS.min(workload.train_calls.len())..]
        .chunks(EPOCH_CALLS)
        .enumerate()
    {
        let t = Instant::now();
        for args in calls {
            machine
                .call(&workload.entry, args)
                .unwrap_or_else(|e| panic!("{}: {e}", workload.name));
        }
        let traffic_ms = ms_since(t);
        // Drain the PMU in bounded batches, as a collector daemon would.
        while machine.pending_samples() > 0 {
            let batch = machine.take_sample_batch(BATCH_SAMPLES);
            agg.push_batch(batch)
                .unwrap_or_else(|e| panic!("{}: {e}", workload.name));
        }
        let summary = agg.seal_epoch();
        epoch_record(&format!("epoch-{}", summary.epoch), traffic_ms, &summary);

        // Mid-stream snapshot→restore→resume check, once per workload.
        // Binary (binprof) is the production snapshot path; set
        // CSSPGO_SNAPSHOT_FORMAT=text to persist the human-readable debug
        // format instead. Both formats are verified to restore the exact
        // aggregator state regardless of which one is persisted.
        if !snapshot_checked && i == 0 {
            let text_snapshot = std::env::var("CSSPGO_SNAPSHOT_FORMAT")
                .map(|v| v.eq_ignore_ascii_case("text"))
                .unwrap_or(false);
            let bin = agg.snapshot_bin();
            let text = agg.snapshot();
            let from_bin =
                StreamAggregator::restore_bin(&binary, cfg.stream.clone(), cfg.ingest_shards, &bin)
                    .unwrap_or_else(|e| {
                        panic!("{}: binary snapshot restore failed: {e}", workload.name)
                    });
            let from_text =
                StreamAggregator::restore(&binary, cfg.stream.clone(), cfg.ingest_shards, &text)
                    .unwrap_or_else(|e| panic!("{}: snapshot restore failed: {e}", workload.name));
            for restored in [&from_bin, &from_text] {
                assert_eq!(
                    restored.context_profile(),
                    agg.context_profile(),
                    "{}: restored profile diverged from live aggregator",
                    workload.name
                );
                assert_eq!(restored.total_samples(), agg.total_samples());
            }
            let (fmt, size) = if text_snapshot {
                ("text", text.len())
            } else {
                ("binary", bin.len())
            };
            println!(
                "{:>16} snapshot : {fmt} {size} bytes ({} bin / {} text), \
                 both formats restore bit-identical",
                workload.name,
                bin.len(),
                text.len()
            );
            snapshot_checked = true;
        }
    }

    // ---------- drift probe: evaluation traffic as the final epoch ----------
    let t = Instant::now();
    for args in &workload.eval_calls {
        machine
            .call(&workload.entry, args)
            .unwrap_or_else(|e| panic!("{}: {e}", workload.name));
    }
    let traffic_ms = ms_since(t);
    while machine.pending_samples() > 0 {
        let batch = machine.take_sample_batch(BATCH_SAMPLES);
        agg.push_batch(batch)
            .unwrap_or_else(|e| panic!("{}: {e}", workload.name));
    }
    let summary = agg.seal_epoch();
    epoch_record("drift-probe", traffic_ms, &summary);

    let profile = agg.to_probe_profile(cfg.trim_threshold);
    println!(
        "{:>16} final    : {} epochs, {} samples, probe profile total {}",
        workload.name,
        agg.epochs_sealed(),
        agg.total_samples(),
        profile.total()
    );

    // A stale profile triggers a refresh: recompile through the drifted
    // cycle (profile collected on the old source, build uses new code).
    // The refresh opts into stale matching — a service living off periodic
    // refreshes is exactly where checksum-gated count drops hurt — and the
    // salvage counters ride into the bench record.
    if agg.is_stale() {
        let mut refresh_cfg = cfg.clone();
        refresh_cfg.annotate.stale_matching = StaleMatching::Recover;
        let drifted_src = drift::insert_body_comments(&workload.source);
        let outcome =
            run_pgo_cycle_drifted(workload, PgoVariant::CsspgoFull, &refresh_cfg, &drifted_src)
                .unwrap_or_else(|e| panic!("{}: refresh cycle failed: {e}", workload.name));
        records.push(
            PipelineBenchRecord::labeled(&workload.name, "refresh", &outcome.stage_times)
                .with_stale(
                    outcome.annotate_stats.stale_dropped,
                    outcome.annotate_stats.stale_recovered,
                ),
        );
        println!(
            "{:>16} refresh  : drift-triggered recompile, eval {} cycles, \
             {} stale dropped / {} recovered",
            workload.name,
            outcome.eval.cycles,
            outcome.annotate_stats.stale_dropped,
            outcome.annotate_stats.stale_recovered
        );
    }

    records
}

fn main() {
    let cfg = PipelineConfig::builder()
        .build()
        .expect("default service config is valid");
    let scale = traffic_scale();

    let mut records = Vec::new();
    for workload in csspgo_workloads::server_workloads() {
        records.extend(serve(&workload.scaled(scale), &cfg));
    }

    let path = std::env::var("BENCH_PROFILE_SERVE_OUT")
        .unwrap_or_else(|_| "BENCH_profile_serve.json".to_string());
    write_pipeline_bench(&path, &records).expect("write profile_serve bench records");
    println!("\nwrote {} records to {path}", records.len());
}
