//! **Ablation (paper §III.B "Synchronizing LBR and stack sample")**: PEBS
//! on vs off.
//!
//! "Due to sampling skid, we observed that stack sample can sometimes lag
//! behind LBR sample by one frame. Fortunately, PEBS can be used to
//! eliminate the skid so both stack sample and LBR sample are always
//! synchronized."
//!
//! Without PEBS our simulator drops the leaf frame from ~1/3 of stack
//! samples; the unwinder then reconstructs fewer and shallower contexts,
//! and end-to-end CSSPGO performance suffers.

use csspgo_bench::{experiment_config, improvement_pct, traffic_scale};
use csspgo_codegen::lower_module;
use csspgo_core::context::ContextProfile;
use csspgo_core::pipeline::{run_pgo_cycle, PgoVariant};
use csspgo_core::ranges::RangeCounts;
use csspgo_core::tailcall::TailCallGraph;
use csspgo_core::unwind::Unwinder;
use csspgo_sim::{Machine, SimConfig};

fn main() {
    let mut cfg = experiment_config();
    let scale = traffic_scale();
    println!("# Ablation — PEBS vs sampling skid (ad_retriever), scale={scale}");
    let w = csspgo_workloads::ad_retriever().scaled(scale);

    let autofdo = run_pgo_cycle(&w, PgoVariant::AutoFdo, &cfg).expect("autofdo");

    println!(
        "| sampling | broken stacks | context samples | trie nodes | full CSSPGO vs AutoFDO |"
    );
    println!("|---|---|---|---|---|");
    for pebs in [true, false] {
        cfg.pebs = pebs;
        // Direct unwinder statistics on the probed profiling binary.
        let mut m = csspgo_lang::compile(&w.source, &w.name).expect("compiles");
        csspgo_opt::discriminators::run(&mut m);
        csspgo_opt::probes::run(&mut m);
        csspgo_opt::run_pipeline(&mut m, &cfg.opt);
        let b = lower_module(&m, &cfg.codegen);
        let mut machine = Machine::new(
            &b,
            SimConfig {
                sample_period: cfg.sample_period,
                pebs,
                ..SimConfig::default()
            },
        );
        for (n, v) in &w.setup {
            machine.set_global(n, v);
        }
        for args in &w.train_calls {
            machine.call(&w.entry, args).expect("runs");
        }
        let samples = machine.take_samples();
        let mut rc = RangeCounts::default();
        rc.add_samples(&b, &samples);
        let graph = TailCallGraph::build(&b, &rc);
        let mut profile = ContextProfile::new();
        let mut uw = Unwinder::new(&b, Some(&graph));
        uw.unwind_into(&samples, &mut profile);

        let outcome = run_pgo_cycle(&w, PgoVariant::CsspgoFull, &cfg).expect("full");
        println!(
            "| {} | {} | {} | {} | {:+.2}% |",
            if pebs {
                "PEBS (`:upp`)"
            } else {
                "no PEBS (skid)"
            },
            uw.broken_stacks,
            profile.total(),
            profile.node_count(),
            improvement_pct(autofdo.eval.cycles, outcome.eval.cycles),
        );
    }
    println!("\n(the paper's `perf record -g --call-graph fp -e br_inst_retired.near_taken:upp`)");
}
