//! Abstract syntax tree, with source lines on every node that lowers to
//! code.

/// A whole source file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Program {
    pub globals: Vec<GlobalDecl>,
    pub functions: Vec<FunctionDecl>,
}

/// `global name[size];` or `global name[size] = [v0, v1, ...];`
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GlobalDecl {
    pub name: String,
    pub size: usize,
    pub init: Vec<i64>,
    pub line: u32,
}

/// `fn name(p0, p1, ...) { body }`
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FunctionDecl {
    pub name: String,
    pub params: Vec<String>,
    pub body: Vec<Stmt>,
    /// Line of the `fn` keyword (the function's header line).
    pub line: u32,
}

/// Statements.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Stmt {
    /// `let name = expr;`
    Let {
        name: String,
        value: Expr,
        line: u32,
    },
    /// `name = expr;`
    Assign {
        name: String,
        value: Expr,
        line: u32,
    },
    /// `name[index] = expr;`
    StoreIndex {
        name: String,
        index: Expr,
        value: Expr,
        line: u32,
    },
    /// `if (cond) { .. } else { .. }`
    If {
        cond: Expr,
        then_body: Vec<Stmt>,
        else_body: Vec<Stmt>,
        line: u32,
    },
    /// `while (cond) { .. }`
    While {
        cond: Expr,
        body: Vec<Stmt>,
        line: u32,
    },
    /// `switch (value) { case k { .. } ... default { .. } }`
    Switch {
        value: Expr,
        cases: Vec<(i64, Vec<Stmt>)>,
        default: Vec<Stmt>,
        line: u32,
    },
    /// `return;` or `return expr;`
    Return { value: Option<Expr>, line: u32 },
    /// `break;`
    Break { line: u32 },
    /// `continue;`
    Continue { line: u32 },
    /// An expression evaluated for effect (a call).
    Expr { expr: Expr, line: u32 },
}

impl Stmt {
    /// The statement's source line.
    pub fn line(&self) -> u32 {
        match self {
            Stmt::Let { line, .. }
            | Stmt::Assign { line, .. }
            | Stmt::StoreIndex { line, .. }
            | Stmt::If { line, .. }
            | Stmt::While { line, .. }
            | Stmt::Switch { line, .. }
            | Stmt::Return { line, .. }
            | Stmt::Break { line }
            | Stmt::Continue { line }
            | Stmt::Expr { line, .. } => *line,
        }
    }
}

/// Binary operators at the AST level (short-circuit ops included).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AstBinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    And,
    Or,
    Xor,
    Shl,
    Shr,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    /// `&&` — short-circuit.
    LogicalAnd,
    /// `||` — short-circuit.
    LogicalOr,
}

/// Expressions; each carries the line it starts on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Expr {
    Int {
        value: i64,
        line: u32,
    },
    Var {
        name: String,
        line: u32,
    },
    /// `name[index]` — global array read.
    Index {
        name: String,
        index: Box<Expr>,
        line: u32,
    },
    Unary {
        op: UnaryOp,
        operand: Box<Expr>,
        line: u32,
    },
    Binary {
        op: AstBinOp,
        lhs: Box<Expr>,
        rhs: Box<Expr>,
        line: u32,
    },
    Call {
        name: String,
        args: Vec<Expr>,
        line: u32,
    },
}

/// Unary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UnaryOp {
    /// Arithmetic negation.
    Neg,
    /// Logical not (`!x` is 1 when x == 0, else 0).
    Not,
}

impl Expr {
    /// The expression's source line.
    pub fn line(&self) -> u32 {
        match self {
            Expr::Int { line, .. }
            | Expr::Var { line, .. }
            | Expr::Index { line, .. }
            | Expr::Unary { line, .. }
            | Expr::Binary { line, .. }
            | Expr::Call { line, .. } => *line,
        }
    }
}
