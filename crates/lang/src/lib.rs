//! MiniLang: the source language of the CSSPGO reproduction.
//!
//! MiniLang is a small imperative language — integers, global arrays,
//! functions, `if`/`while`/`switch`, short-circuit booleans — just enough to
//! express the paper's workload structures (interpreter dispatch loops,
//! shared helpers with context-divergent behaviour, tail calls).
//!
//! Crucially for this reproduction, lowering records **accurate source
//! lines** on every IR instruction: AutoFDO-style profile correlation anchors
//! on line offsets, so the paper's *source drift* experiments (a comment
//! insertion shifting every subsequent line) are real here, not simulated.
//!
//! # Example
//!
//! ```
//! let src = r#"
//! fn add(a, b) {
//!     return a + b;
//! }
//! fn main(x) {
//!     return add(x, 1);
//! }
//! "#;
//! let module = csspgo_lang::compile(src, "demo")?;
//! assert_eq!(module.functions.len(), 2);
//! # Ok::<(), csspgo_lang::CompileError>(())
//! ```

pub mod ast;
pub mod lexer;
pub mod lower;
pub mod parser;

use csspgo_ir::Module;
use std::error::Error;
use std::fmt;

/// Any front-end failure, with the source line it occurred on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CompileError {
    /// 1-based source line.
    pub line: u32,
    /// What went wrong.
    pub message: String,
}

impl CompileError {
    pub(crate) fn new(line: u32, message: impl Into<String>) -> Self {
        CompileError {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for CompileError {}

/// Compiles MiniLang source text into an IR [`Module`].
///
/// # Errors
///
/// Returns a [`CompileError`] for lexical, syntactic, or name-resolution
/// failures (unknown variables, functions, globals; arity mismatches).
pub fn compile(source: &str, module_name: &str) -> Result<Module, CompileError> {
    let tokens = lexer::lex(source)?;
    let program = parser::parse(&tokens)?;
    lower::lower(&program, module_name)
}
