//! AST → IR lowering with line-accurate debug locations.

use crate::ast::*;
use crate::CompileError;
use csspgo_ir::builder::{FunctionBuilder, ModuleBuilder};
use csspgo_ir::inst::{BinOp, CmpPred, InstKind, Operand};
use csspgo_ir::{BlockId, FuncId, GlobalId, Module, VReg};
use std::collections::HashMap;

/// Lowers a parsed [`Program`] into an IR [`Module`].
///
/// # Errors
///
/// Returns a [`CompileError`] for unknown names, duplicate definitions, or
/// call-arity mismatches.
pub fn lower(program: &Program, module_name: &str) -> Result<Module, CompileError> {
    let mut mb = ModuleBuilder::new(module_name);

    let mut globals: HashMap<String, GlobalId> = HashMap::new();
    for g in &program.globals {
        if globals.contains_key(&g.name) {
            return Err(CompileError::new(
                g.line,
                format!("duplicate global `{}`", g.name),
            ));
        }
        let id = mb.add_global(g.name.clone(), g.size, g.init.clone());
        globals.insert(g.name.clone(), id);
    }

    let mut funcs: HashMap<String, (FuncId, usize)> = HashMap::new();
    for f in &program.functions {
        if funcs.contains_key(&f.name) {
            return Err(CompileError::new(
                f.line,
                format!("duplicate function `{}`", f.name),
            ));
        }
        let id = mb.declare_function(f.name.clone(), f.params.len());
        funcs.insert(f.name.clone(), (id, f.params.len()));
    }

    for f in &program.functions {
        let (id, _) = funcs[&f.name];
        let mut fb = mb.function_builder(id);
        fb.set_start_line(f.line);
        let mut ctx = LowerCtx {
            fb,
            globals: &globals,
            funcs: &funcs,
            locals: HashMap::new(),
            loop_stack: Vec::new(),
        };
        for (i, p) in f.params.iter().enumerate() {
            ctx.locals.insert(p.clone(), VReg(i as u32));
        }
        let entry = ctx.fb.entry_block();
        ctx.fb.switch_to(entry);
        ctx.lower_body(&f.body)?;
        // Implicit `return 0;` if control can fall off the end.
        if !ctx.block_terminated() {
            ctx.fb.set_line(f.line);
            ctx.fb.ret(Some(Operand::Imm(0)));
        }
        drop(ctx);
        csspgo_ir::cfg::remove_unreachable(mb.func_mut(id));
    }

    let module = mb.finish();
    if let Some(e) = csspgo_ir::verify::verify_module(&module).first() {
        return Err(CompileError::new(
            0,
            format!("internal lowering error: {e}"),
        ));
    }
    Ok(module)
}

struct LowerCtx<'m, 'e> {
    fb: FunctionBuilder<'m>,
    globals: &'e HashMap<String, GlobalId>,
    funcs: &'e HashMap<String, (FuncId, usize)>,
    locals: HashMap<String, VReg>,
    /// (continue target, break target) per enclosing loop.
    loop_stack: Vec<(BlockId, BlockId)>,
}

impl LowerCtx<'_, '_> {
    fn block_terminated(&self) -> bool {
        self.fb.current_is_terminated()
    }

    fn lower_body(&mut self, stmts: &[Stmt]) -> Result<(), CompileError> {
        for stmt in stmts {
            if self.block_terminated() {
                // Unreachable code after return/break; lower into a fresh
                // orphan block that remove_unreachable will delete, so that
                // the code is still name-checked.
                let orphan = self.fb.add_block();
                self.fb.switch_to(orphan);
            }
            self.lower_stmt(stmt)?;
        }
        Ok(())
    }

    fn lower_stmt(&mut self, stmt: &Stmt) -> Result<(), CompileError> {
        self.fb.set_line(stmt.line());
        match stmt {
            Stmt::Let {
                name,
                value,
                line: _,
            } => {
                let v = self.lower_expr(value)?;
                // Bind (or rebind) the name to a dedicated register so later
                // assignments can overwrite it.
                let dst = match self.locals.get(name) {
                    Some(&r) => r,
                    None => {
                        let r = self.fb.new_vreg();
                        self.locals.insert(name.clone(), r);
                        r
                    }
                };
                self.fb.emit(InstKind::Copy { dst, src: v });
                Ok(())
            }
            Stmt::Assign { name, value, line } => {
                let v = self.lower_expr(value)?;
                self.fb.set_line(*line);
                let dst = *self.locals.get(name).ok_or_else(|| {
                    CompileError::new(*line, format!("assignment to unknown variable `{name}`"))
                })?;
                self.fb.emit(InstKind::Copy { dst, src: v });
                Ok(())
            }
            Stmt::StoreIndex {
                name,
                index,
                value,
                line,
            } => {
                let g = *self.globals.get(name).ok_or_else(|| {
                    CompileError::new(*line, format!("store to unknown global `{name}`"))
                })?;
                let idx = self.lower_expr(index)?;
                let val = self.lower_expr(value)?;
                self.fb.set_line(*line);
                self.fb.store(g, idx, val);
                Ok(())
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
                line,
            } => {
                let c = self.lower_expr(cond)?;
                let then_bb = self.fb.add_block();
                let else_bb = self.fb.add_block();
                let join = self.fb.add_block();
                self.fb.set_line(*line);
                self.fb.cond_br(c, then_bb, else_bb);

                self.fb.switch_to(then_bb);
                self.lower_body(then_body)?;
                if !self.block_terminated() {
                    self.fb.br(join);
                }
                self.fb.switch_to(else_bb);
                self.lower_body(else_body)?;
                if !self.block_terminated() {
                    self.fb.br(join);
                }
                self.fb.switch_to(join);
                Ok(())
            }
            Stmt::While { cond, body, line } => {
                let header = self.fb.add_block();
                let body_bb = self.fb.add_block();
                let exit = self.fb.add_block();
                self.fb.br(header);
                self.fb.switch_to(header);
                self.fb.set_line(*line);
                let c = self.lower_expr(cond)?;
                self.fb.set_line(*line);
                self.fb.cond_br(c, body_bb, exit);
                self.fb.switch_to(body_bb);
                self.loop_stack.push((header, exit));
                self.lower_body(body)?;
                self.loop_stack.pop();
                if !self.block_terminated() {
                    self.fb.br(header);
                }
                self.fb.switch_to(exit);
                Ok(())
            }
            Stmt::Switch {
                value,
                cases,
                default,
                line,
            } => {
                let v = self.lower_expr(value)?;
                let join = self.fb.add_block();
                let default_bb = self.fb.add_block();
                let mut case_bbs = Vec::with_capacity(cases.len());
                for _ in cases {
                    case_bbs.push(self.fb.add_block());
                }
                self.fb.set_line(*line);
                let table: Vec<(i64, BlockId)> = cases
                    .iter()
                    .zip(&case_bbs)
                    .map(|((k, _), bb)| (*k, *bb))
                    .collect();
                self.fb.switch(v, table, default_bb);

                for ((_, body), bb) in cases.iter().zip(&case_bbs) {
                    self.fb.switch_to(*bb);
                    self.lower_body(body)?;
                    if !self.block_terminated() {
                        self.fb.br(join);
                    }
                }
                self.fb.switch_to(default_bb);
                self.lower_body(default)?;
                if !self.block_terminated() {
                    self.fb.br(join);
                }
                self.fb.switch_to(join);
                Ok(())
            }
            Stmt::Return { value, line } => {
                let v = match value {
                    Some(e) => Some(self.lower_expr(e)?),
                    None => None,
                };
                self.fb.set_line(*line);
                self.fb.ret(v);
                Ok(())
            }
            Stmt::Break { line } => {
                let (_, brk) = *self
                    .loop_stack
                    .last()
                    .ok_or_else(|| CompileError::new(*line, "`break` outside of a loop"))?;
                self.fb.br(brk);
                Ok(())
            }
            Stmt::Continue { line } => {
                let (cont, _) = *self
                    .loop_stack
                    .last()
                    .ok_or_else(|| CompileError::new(*line, "`continue` outside of a loop"))?;
                self.fb.br(cont);
                Ok(())
            }
            Stmt::Expr { expr, .. } => {
                self.lower_expr(expr)?;
                Ok(())
            }
        }
    }

    fn lower_expr(&mut self, expr: &Expr) -> Result<Operand, CompileError> {
        self.fb.set_line(expr.line());
        match expr {
            Expr::Int { value, .. } => Ok(Operand::Imm(*value)),
            Expr::Var { name, line } => self
                .locals
                .get(name)
                .map(|&r| Operand::Reg(r))
                .ok_or_else(|| CompileError::new(*line, format!("unknown variable `{name}`"))),
            Expr::Index { name, index, line } => {
                let g = *self
                    .globals
                    .get(name)
                    .ok_or_else(|| CompileError::new(*line, format!("unknown global `{name}`")))?;
                let idx = self.lower_expr(index)?;
                self.fb.set_line(*line);
                Ok(Operand::Reg(self.fb.load(g, idx)))
            }
            Expr::Unary { op, operand, line } => {
                let v = self.lower_expr(operand)?;
                self.fb.set_line(*line);
                let r = match op {
                    UnaryOp::Neg => self.fb.bin(BinOp::Sub, Operand::Imm(0), v),
                    UnaryOp::Not => self.fb.cmp(CmpPred::Eq, v, Operand::Imm(0)),
                };
                Ok(Operand::Reg(r))
            }
            Expr::Binary { op, lhs, rhs, line } => {
                if matches!(op, AstBinOp::LogicalAnd | AstBinOp::LogicalOr) {
                    return self.lower_short_circuit(*op, lhs, rhs, *line);
                }
                let a = self.lower_expr(lhs)?;
                let b = self.lower_expr(rhs)?;
                self.fb.set_line(*line);
                let r = match op {
                    AstBinOp::Add => self.fb.bin(BinOp::Add, a, b),
                    AstBinOp::Sub => self.fb.bin(BinOp::Sub, a, b),
                    AstBinOp::Mul => self.fb.bin(BinOp::Mul, a, b),
                    AstBinOp::Div => self.fb.bin(BinOp::Div, a, b),
                    AstBinOp::Rem => self.fb.bin(BinOp::Rem, a, b),
                    AstBinOp::And => self.fb.bin(BinOp::And, a, b),
                    AstBinOp::Or => self.fb.bin(BinOp::Or, a, b),
                    AstBinOp::Xor => self.fb.bin(BinOp::Xor, a, b),
                    AstBinOp::Shl => self.fb.bin(BinOp::Shl, a, b),
                    AstBinOp::Shr => self.fb.bin(BinOp::Shr, a, b),
                    AstBinOp::Eq => self.fb.cmp(CmpPred::Eq, a, b),
                    AstBinOp::Ne => self.fb.cmp(CmpPred::Ne, a, b),
                    AstBinOp::Lt => self.fb.cmp(CmpPred::Lt, a, b),
                    AstBinOp::Le => self.fb.cmp(CmpPred::Le, a, b),
                    AstBinOp::Gt => self.fb.cmp(CmpPred::Gt, a, b),
                    AstBinOp::Ge => self.fb.cmp(CmpPred::Ge, a, b),
                    AstBinOp::LogicalAnd | AstBinOp::LogicalOr => unreachable!(),
                };
                Ok(Operand::Reg(r))
            }
            Expr::Call { name, args, line } => {
                let &(callee, arity) = self.funcs.get(name).ok_or_else(|| {
                    CompileError::new(*line, format!("unknown function `{name}`"))
                })?;
                if args.len() != arity {
                    return Err(CompileError::new(
                        *line,
                        format!("`{name}` expects {arity} arguments, got {}", args.len()),
                    ));
                }
                let mut lowered = Vec::with_capacity(args.len());
                for a in args {
                    lowered.push(self.lower_expr(a)?);
                }
                self.fb.set_line(*line);
                Ok(Operand::Reg(self.fb.call(callee, lowered)))
            }
        }
    }

    /// Lowers `a && b` / `a || b` with short-circuit control flow into a
    /// 0/1-valued register.
    fn lower_short_circuit(
        &mut self,
        op: AstBinOp,
        lhs: &Expr,
        rhs: &Expr,
        line: u32,
    ) -> Result<Operand, CompileError> {
        let result = self.fb.new_vreg();
        let rhs_bb = self.fb.add_block();
        let short_bb = self.fb.add_block();
        let join = self.fb.add_block();

        let a = self.lower_expr(lhs)?;
        self.fb.set_line(line);
        let a_bool = self.fb.cmp(CmpPred::Ne, a, Operand::Imm(0));
        match op {
            AstBinOp::LogicalAnd => self.fb.cond_br(Operand::Reg(a_bool), rhs_bb, short_bb),
            AstBinOp::LogicalOr => self.fb.cond_br(Operand::Reg(a_bool), short_bb, rhs_bb),
            _ => unreachable!("not a short-circuit op"),
        }

        self.fb.switch_to(rhs_bb);
        let b = self.lower_expr(rhs)?;
        self.fb.set_line(line);
        let b_bool = self.fb.cmp(CmpPred::Ne, b, Operand::Imm(0));
        self.fb.emit(InstKind::Copy {
            dst: result,
            src: Operand::Reg(b_bool),
        });
        self.fb.br(join);

        self.fb.switch_to(short_bb);
        let short_val = match op {
            AstBinOp::LogicalAnd => 0,
            _ => 1,
        };
        self.fb.emit(InstKind::Copy {
            dst: result,
            src: Operand::Imm(short_val),
        });
        self.fb.br(join);

        self.fb.switch_to(join);
        Ok(Operand::Reg(result))
    }
}

#[cfg(test)]
mod tests {
    use crate::compile;
    use csspgo_ir::inst::InstKind;

    #[test]
    fn lowers_arithmetic_function() {
        let m = compile("fn f(a, b) { return a * b + 1; }", "t").unwrap();
        assert_eq!(m.functions.len(), 1);
        assert_eq!(m.functions[0].num_params, 2);
    }

    #[test]
    fn implicit_return_zero() {
        let m = compile("fn f() { let x = 1; }", "t").unwrap();
        let f = &m.functions[0];
        let term = f.block(f.entry).terminator().unwrap();
        assert!(matches!(term.kind, InstKind::Ret { value: Some(_) }));
    }

    #[test]
    fn while_with_break_and_continue() {
        let src = r#"
fn f(n) {
    let i = 0;
    let acc = 0;
    while (1) {
        if (i >= n) { break; }
        i = i + 1;
        if (i % 2 == 0) { continue; }
        acc = acc + i;
    }
    return acc;
}
"#;
        let m = compile(src, "t").unwrap();
        assert!(m.functions[0].num_live_blocks() >= 6);
    }

    #[test]
    fn switch_lowering_produces_switch_inst() {
        let src = "fn f(x) { switch (x) { case 0 { return 10; } case 7 { return 20; } default { return 0; } } }";
        let m = compile(src, "t").unwrap();
        let has_switch = m.functions[0]
            .iter_blocks()
            .flat_map(|(_, b)| &b.insts)
            .any(|i| matches!(i.kind, InstKind::Switch { .. }));
        assert!(has_switch);
    }

    #[test]
    fn unknown_variable_is_an_error() {
        let e = compile("fn f() { return y; }", "t").unwrap_err();
        assert!(e.message.contains("unknown variable"));
    }

    #[test]
    fn arity_mismatch_is_an_error() {
        let e = compile("fn g(a) { return a; } fn f() { return g(1, 2); }", "t").unwrap_err();
        assert!(e.message.contains("expects 1 arguments"));
    }

    #[test]
    fn break_outside_loop_is_an_error() {
        let e = compile("fn f() { break; }", "t").unwrap_err();
        assert!(e.message.contains("outside of a loop"));
    }

    #[test]
    fn statements_after_return_do_not_break_lowering() {
        let m = compile("fn f() { return 1; let x = 2; }", "t").unwrap();
        assert_eq!(csspgo_ir::verify::verify_module(&m), vec![]);
    }

    #[test]
    fn line_numbers_attached() {
        let src = "fn f(a) {\n    let x = a + 1;\n    return x;\n}";
        let m = compile(src, "t").unwrap();
        let f = &m.functions[0];
        assert_eq!(f.start_line, 1);
        let lines: Vec<u32> = f
            .iter_blocks()
            .flat_map(|(_, b)| &b.insts)
            .map(|i| i.loc.line)
            .collect();
        assert!(lines.contains(&2));
        assert!(lines.contains(&3));
    }

    #[test]
    fn globals_resolve_in_loads_and_stores() {
        let src = "global t[8] = [5];\nfn f(i) { t[i] = t[i] + 1; return t[0]; }";
        let m = compile(src, "t").unwrap();
        assert_eq!(m.globals.len(), 1);
        let kinds: Vec<_> = m.functions[0]
            .iter_blocks()
            .flat_map(|(_, b)| &b.insts)
            .map(|i| &i.kind)
            .collect();
        assert!(kinds.iter().any(|k| matches!(k, InstKind::Load { .. })));
        assert!(kinds.iter().any(|k| matches!(k, InstKind::Store { .. })));
    }

    #[test]
    fn short_circuit_creates_control_flow() {
        let m = compile("fn f(a, b) { return a && b; }", "t").unwrap();
        assert!(m.functions[0].num_live_blocks() >= 4);
    }
}
