//! Recursive-descent parser with precedence climbing.

use crate::ast::*;
use crate::lexer::{Tok, Token};
use crate::CompileError;

/// Parses a token stream (as produced by [`crate::lexer::lex`]) into a
/// [`Program`].
///
/// # Errors
///
/// Returns a [`CompileError`] naming the unexpected token and its line.
pub fn parse(tokens: &[Token]) -> Result<Program, CompileError> {
    let mut p = Parser { tokens, pos: 0 };
    p.program()
}

struct Parser<'a> {
    tokens: &'a [Token],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> &Tok {
        &self.tokens[self.pos].tok
    }

    fn line(&self) -> u32 {
        self.tokens[self.pos].line
    }

    fn bump(&mut self) -> &Tok {
        let t = &self.tokens[self.pos].tok;
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, tok: &Tok) -> bool {
        if self.peek() == tok {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, tok: Tok) -> Result<(), CompileError> {
        if self.peek() == &tok {
            self.bump();
            Ok(())
        } else {
            Err(CompileError::new(
                self.line(),
                format!("expected `{tok}`, found `{}`", self.peek()),
            ))
        }
    }

    fn ident(&mut self) -> Result<String, CompileError> {
        match self.peek().clone() {
            Tok::Ident(name) => {
                self.bump();
                Ok(name)
            }
            other => Err(CompileError::new(
                self.line(),
                format!("expected identifier, found `{other}`"),
            )),
        }
    }

    fn int(&mut self) -> Result<i64, CompileError> {
        // Allow a leading minus in constant positions.
        let neg = self.eat(&Tok::Minus);
        match *self.peek() {
            Tok::Int(v) => {
                self.bump();
                Ok(if neg { -v } else { v })
            }
            ref other => Err(CompileError::new(
                self.line(),
                format!("expected integer, found `{other}`"),
            )),
        }
    }

    fn program(&mut self) -> Result<Program, CompileError> {
        let mut globals = Vec::new();
        let mut functions = Vec::new();
        loop {
            match self.peek() {
                Tok::Eof => break,
                Tok::Global => globals.push(self.global_decl()?),
                Tok::Fn => functions.push(self.function_decl()?),
                other => {
                    return Err(CompileError::new(
                        self.line(),
                        format!("expected `fn` or `global`, found `{other}`"),
                    ))
                }
            }
        }
        Ok(Program { globals, functions })
    }

    fn global_decl(&mut self) -> Result<GlobalDecl, CompileError> {
        let line = self.line();
        self.expect(Tok::Global)?;
        let name = self.ident()?;
        self.expect(Tok::LBracket)?;
        let size = self.int()?;
        if size < 0 {
            return Err(CompileError::new(line, "negative global size"));
        }
        self.expect(Tok::RBracket)?;
        let mut init = Vec::new();
        if self.eat(&Tok::Assign) {
            self.expect(Tok::LBracket)?;
            if !self.eat(&Tok::RBracket) {
                loop {
                    init.push(self.int()?);
                    if !self.eat(&Tok::Comma) {
                        break;
                    }
                }
                self.expect(Tok::RBracket)?;
            }
        }
        self.expect(Tok::Semi)?;
        Ok(GlobalDecl {
            name,
            size: size as usize,
            init,
            line,
        })
    }

    fn function_decl(&mut self) -> Result<FunctionDecl, CompileError> {
        let line = self.line();
        self.expect(Tok::Fn)?;
        let name = self.ident()?;
        self.expect(Tok::LParen)?;
        let mut params = Vec::new();
        if !self.eat(&Tok::RParen) {
            loop {
                params.push(self.ident()?);
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
            self.expect(Tok::RParen)?;
        }
        let body = self.block()?;
        Ok(FunctionDecl {
            name,
            params,
            body,
            line,
        })
    }

    fn block(&mut self) -> Result<Vec<Stmt>, CompileError> {
        self.expect(Tok::LBrace)?;
        let mut stmts = Vec::new();
        while !self.eat(&Tok::RBrace) {
            if self.peek() == &Tok::Eof {
                return Err(CompileError::new(
                    self.line(),
                    "unexpected end of input in block",
                ));
            }
            stmts.push(self.stmt()?);
        }
        Ok(stmts)
    }

    fn stmt(&mut self) -> Result<Stmt, CompileError> {
        let line = self.line();
        match self.peek().clone() {
            Tok::Let => {
                self.bump();
                let name = self.ident()?;
                self.expect(Tok::Assign)?;
                let value = self.expr()?;
                self.expect(Tok::Semi)?;
                Ok(Stmt::Let { name, value, line })
            }
            Tok::If => {
                self.bump();
                self.expect(Tok::LParen)?;
                let cond = self.expr()?;
                self.expect(Tok::RParen)?;
                let then_body = self.block()?;
                let else_body = if self.eat(&Tok::Else) {
                    if self.peek() == &Tok::If {
                        // `else if` chains as a nested if.
                        vec![self.stmt()?]
                    } else {
                        self.block()?
                    }
                } else {
                    Vec::new()
                };
                Ok(Stmt::If {
                    cond,
                    then_body,
                    else_body,
                    line,
                })
            }
            Tok::While => {
                self.bump();
                self.expect(Tok::LParen)?;
                let cond = self.expr()?;
                self.expect(Tok::RParen)?;
                let body = self.block()?;
                Ok(Stmt::While { cond, body, line })
            }
            Tok::Switch => {
                self.bump();
                self.expect(Tok::LParen)?;
                let value = self.expr()?;
                self.expect(Tok::RParen)?;
                self.expect(Tok::LBrace)?;
                let mut cases = Vec::new();
                let mut default = Vec::new();
                loop {
                    if self.eat(&Tok::RBrace) {
                        break;
                    }
                    if self.eat(&Tok::Case) {
                        let k = self.int()?;
                        let body = self.block()?;
                        cases.push((k, body));
                    } else if self.eat(&Tok::Default) {
                        default = self.block()?;
                    } else {
                        return Err(CompileError::new(
                            self.line(),
                            format!(
                                "expected `case`, `default` or `}}`, found `{}`",
                                self.peek()
                            ),
                        ));
                    }
                }
                Ok(Stmt::Switch {
                    value,
                    cases,
                    default,
                    line,
                })
            }
            Tok::Return => {
                self.bump();
                let value = if self.peek() == &Tok::Semi {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(Tok::Semi)?;
                Ok(Stmt::Return { value, line })
            }
            Tok::Break => {
                self.bump();
                self.expect(Tok::Semi)?;
                Ok(Stmt::Break { line })
            }
            Tok::Continue => {
                self.bump();
                self.expect(Tok::Semi)?;
                Ok(Stmt::Continue { line })
            }
            Tok::Ident(name) => {
                // Could be assignment, indexed store, or a call statement.
                match &self.tokens[self.pos + 1].tok {
                    Tok::Assign => {
                        self.bump();
                        self.bump();
                        let value = self.expr()?;
                        self.expect(Tok::Semi)?;
                        Ok(Stmt::Assign { name, value, line })
                    }
                    Tok::LBracket => {
                        // Disambiguate `a[i] = v;` from expression statement
                        // `a[i];` by parsing the index then checking for `=`.
                        self.bump();
                        self.bump();
                        let index = self.expr()?;
                        self.expect(Tok::RBracket)?;
                        if self.eat(&Tok::Assign) {
                            let value = self.expr()?;
                            self.expect(Tok::Semi)?;
                            Ok(Stmt::StoreIndex {
                                name,
                                index,
                                value,
                                line,
                            })
                        } else {
                            self.expect(Tok::Semi)?;
                            Ok(Stmt::Expr {
                                expr: Expr::Index {
                                    name,
                                    index: Box::new(index),
                                    line,
                                },
                                line,
                            })
                        }
                    }
                    _ => {
                        let expr = self.expr()?;
                        self.expect(Tok::Semi)?;
                        Ok(Stmt::Expr { expr, line })
                    }
                }
            }
            other => Err(CompileError::new(
                line,
                format!("expected statement, found `{other}`"),
            )),
        }
    }

    fn expr(&mut self) -> Result<Expr, CompileError> {
        self.binary_expr(0)
    }

    /// Precedence climbing; higher binds tighter.
    fn binary_expr(&mut self, min_prec: u8) -> Result<Expr, CompileError> {
        let mut lhs = self.unary_expr()?;
        loop {
            let (op, prec) = match self.peek() {
                Tok::PipePipe => (AstBinOp::LogicalOr, 1),
                Tok::AmpAmp => (AstBinOp::LogicalAnd, 2),
                Tok::Pipe => (AstBinOp::Or, 3),
                Tok::Caret => (AstBinOp::Xor, 4),
                Tok::Amp => (AstBinOp::And, 5),
                Tok::EqEq => (AstBinOp::Eq, 6),
                Tok::NotEq => (AstBinOp::Ne, 6),
                Tok::Lt => (AstBinOp::Lt, 7),
                Tok::Le => (AstBinOp::Le, 7),
                Tok::Gt => (AstBinOp::Gt, 7),
                Tok::Ge => (AstBinOp::Ge, 7),
                Tok::Shl => (AstBinOp::Shl, 8),
                Tok::Shr => (AstBinOp::Shr, 8),
                Tok::Plus => (AstBinOp::Add, 9),
                Tok::Minus => (AstBinOp::Sub, 9),
                Tok::Star => (AstBinOp::Mul, 10),
                Tok::Slash => (AstBinOp::Div, 10),
                Tok::Percent => (AstBinOp::Rem, 10),
                _ => break,
            };
            if prec < min_prec {
                break;
            }
            let line = self.line();
            self.bump();
            let rhs = self.binary_expr(prec + 1)?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                line,
            };
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<Expr, CompileError> {
        let line = self.line();
        if self.eat(&Tok::Minus) {
            let operand = self.unary_expr()?;
            return Ok(Expr::Unary {
                op: UnaryOp::Neg,
                operand: Box::new(operand),
                line,
            });
        }
        if self.eat(&Tok::Bang) {
            let operand = self.unary_expr()?;
            return Ok(Expr::Unary {
                op: UnaryOp::Not,
                operand: Box::new(operand),
                line,
            });
        }
        self.primary_expr()
    }

    fn primary_expr(&mut self) -> Result<Expr, CompileError> {
        let line = self.line();
        match self.peek().clone() {
            Tok::Int(v) => {
                self.bump();
                Ok(Expr::Int { value: v, line })
            }
            Tok::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(Tok::RParen)?;
                Ok(e)
            }
            Tok::Ident(name) => {
                self.bump();
                match self.peek() {
                    Tok::LParen => {
                        self.bump();
                        let mut args = Vec::new();
                        if !self.eat(&Tok::RParen) {
                            loop {
                                args.push(self.expr()?);
                                if !self.eat(&Tok::Comma) {
                                    break;
                                }
                            }
                            self.expect(Tok::RParen)?;
                        }
                        Ok(Expr::Call { name, args, line })
                    }
                    Tok::LBracket => {
                        self.bump();
                        let index = self.expr()?;
                        self.expect(Tok::RBracket)?;
                        Ok(Expr::Index {
                            name,
                            index: Box::new(index),
                            line,
                        })
                    }
                    _ => Ok(Expr::Var { name, line }),
                }
            }
            other => Err(CompileError::new(
                line,
                format!("expected expression, found `{other}`"),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> Program {
        parse(&lex(src).unwrap()).unwrap()
    }

    #[test]
    fn parses_function_with_params() {
        let p = parse_src("fn f(a, b) { return a + b; }");
        assert_eq!(p.functions.len(), 1);
        assert_eq!(p.functions[0].params, vec!["a", "b"]);
    }

    #[test]
    fn parses_global_with_init() {
        let p = parse_src("global t[4] = [1, -2, 3];");
        assert_eq!(p.globals[0].size, 4);
        assert_eq!(p.globals[0].init, vec![1, -2, 3]);
    }

    #[test]
    fn precedence_mul_binds_tighter_than_add() {
        let p = parse_src("fn f() { let x = 1 + 2 * 3; return x; }");
        let Stmt::Let { value, .. } = &p.functions[0].body[0] else {
            panic!("expected let");
        };
        let Expr::Binary {
            op: AstBinOp::Add,
            rhs,
            ..
        } = value
        else {
            panic!("expected add at top: {value:?}");
        };
        assert!(matches!(
            **rhs,
            Expr::Binary {
                op: AstBinOp::Mul,
                ..
            }
        ));
    }

    #[test]
    fn else_if_chains() {
        let p = parse_src("fn f(x) { if (x == 0) { return 1; } else if (x == 1) { return 2; } else { return 3; } }");
        let Stmt::If { else_body, .. } = &p.functions[0].body[0] else {
            panic!();
        };
        assert!(matches!(else_body[0], Stmt::If { .. }));
    }

    #[test]
    fn switch_statement() {
        let p = parse_src("fn f(x) { switch (x) { case 0 { return 1; } case 1 { return 2; } default { return 0; } } }");
        let Stmt::Switch { cases, default, .. } = &p.functions[0].body[0] else {
            panic!();
        };
        assert_eq!(cases.len(), 2);
        assert_eq!(default.len(), 1);
    }

    #[test]
    fn indexed_store_vs_read() {
        let p = parse_src("global t[4]; fn f(i) { t[i] = t[i] + 1; return t[i]; }");
        assert!(matches!(p.functions[0].body[0], Stmt::StoreIndex { .. }));
    }

    #[test]
    fn error_reports_line() {
        let toks = lex("fn f() {\n  let = 3;\n}").unwrap();
        let e = parse(&toks).unwrap_err();
        assert_eq!(e.line, 2);
    }

    #[test]
    fn statement_lines_recorded() {
        let p = parse_src("fn f() {\n  let x = 1;\n  return x;\n}");
        assert_eq!(p.functions[0].body[0].line(), 2);
        assert_eq!(p.functions[0].body[1].line(), 3);
        assert_eq!(p.functions[0].line, 1);
    }

    #[test]
    fn logical_ops_parse() {
        let p = parse_src("fn f(a, b) { return a && b || !a; }");
        let Stmt::Return { value: Some(e), .. } = &p.functions[0].body[0] else {
            panic!();
        };
        assert!(matches!(
            e,
            Expr::Binary {
                op: AstBinOp::LogicalOr,
                ..
            }
        ));
    }
}
