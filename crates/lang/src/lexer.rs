//! Lexer: source text → token stream with line numbers.

use crate::CompileError;
use std::fmt;

/// A lexical token kind.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Tok {
    // Literals and names
    Int(i64),
    Ident(String),
    // Keywords
    Fn,
    Let,
    If,
    Else,
    While,
    Return,
    Global,
    Switch,
    Case,
    Default,
    Break,
    Continue,
    // Punctuation
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Comma,
    Semi,
    Colon,
    Assign,
    // Operators
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Amp,
    Pipe,
    Caret,
    Shl,
    Shr,
    AmpAmp,
    PipePipe,
    Bang,
    EqEq,
    NotEq,
    Lt,
    Le,
    Gt,
    Ge,
    /// End of input (always the last token).
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Int(v) => write!(f, "{v}"),
            Tok::Ident(s) => write!(f, "{s}"),
            other => {
                let s = match other {
                    Tok::Fn => "fn",
                    Tok::Let => "let",
                    Tok::If => "if",
                    Tok::Else => "else",
                    Tok::While => "while",
                    Tok::Return => "return",
                    Tok::Global => "global",
                    Tok::Switch => "switch",
                    Tok::Case => "case",
                    Tok::Default => "default",
                    Tok::Break => "break",
                    Tok::Continue => "continue",
                    Tok::LParen => "(",
                    Tok::RParen => ")",
                    Tok::LBrace => "{",
                    Tok::RBrace => "}",
                    Tok::LBracket => "[",
                    Tok::RBracket => "]",
                    Tok::Comma => ",",
                    Tok::Semi => ";",
                    Tok::Colon => ":",
                    Tok::Assign => "=",
                    Tok::Plus => "+",
                    Tok::Minus => "-",
                    Tok::Star => "*",
                    Tok::Slash => "/",
                    Tok::Percent => "%",
                    Tok::Amp => "&",
                    Tok::Pipe => "|",
                    Tok::Caret => "^",
                    Tok::Shl => "<<",
                    Tok::Shr => ">>",
                    Tok::AmpAmp => "&&",
                    Tok::PipePipe => "||",
                    Tok::Bang => "!",
                    Tok::EqEq => "==",
                    Tok::NotEq => "!=",
                    Tok::Lt => "<",
                    Tok::Le => "<=",
                    Tok::Gt => ">",
                    Tok::Ge => ">=",
                    Tok::Eof => "<eof>",
                    Tok::Int(_) | Tok::Ident(_) => unreachable!(),
                };
                f.write_str(s)
            }
        }
    }
}

/// A token plus the 1-based line it starts on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Token {
    pub tok: Tok,
    pub line: u32,
}

/// Lexes `source` into tokens (terminated by [`Tok::Eof`]).
///
/// # Errors
///
/// Returns a [`CompileError`] on unknown characters or malformed integer
/// literals.
pub fn lex(source: &str) -> Result<Vec<Token>, CompileError> {
    let mut tokens = Vec::new();
    let bytes = source.as_bytes();
    let mut i = 0usize;
    let mut line = 1u32;

    while i < bytes.len() {
        let c = bytes[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'0'..=b'9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let text = &source[start..i];
                let value: i64 = text.parse().map_err(|_| {
                    CompileError::new(line, format!("integer literal `{text}` out of range"))
                })?;
                tokens.push(Token {
                    tok: Tok::Int(value),
                    line,
                });
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                let text = &source[start..i];
                let tok = match text {
                    "fn" => Tok::Fn,
                    "let" => Tok::Let,
                    "if" => Tok::If,
                    "else" => Tok::Else,
                    "while" => Tok::While,
                    "return" => Tok::Return,
                    "global" => Tok::Global,
                    "switch" => Tok::Switch,
                    "case" => Tok::Case,
                    "default" => Tok::Default,
                    "break" => Tok::Break,
                    "continue" => Tok::Continue,
                    _ => Tok::Ident(text.to_string()),
                };
                tokens.push(Token { tok, line });
            }
            _ => {
                let two = |a: u8, b: u8| i + 1 < bytes.len() && c == a && bytes[i + 1] == b;
                let (tok, len) = if two(b'<', b'<') {
                    (Tok::Shl, 2)
                } else if two(b'>', b'>') {
                    (Tok::Shr, 2)
                } else if two(b'&', b'&') {
                    (Tok::AmpAmp, 2)
                } else if two(b'|', b'|') {
                    (Tok::PipePipe, 2)
                } else if two(b'=', b'=') {
                    (Tok::EqEq, 2)
                } else if two(b'!', b'=') {
                    (Tok::NotEq, 2)
                } else if two(b'<', b'=') {
                    (Tok::Le, 2)
                } else if two(b'>', b'=') {
                    (Tok::Ge, 2)
                } else {
                    let t = match c {
                        b'(' => Tok::LParen,
                        b')' => Tok::RParen,
                        b'{' => Tok::LBrace,
                        b'}' => Tok::RBrace,
                        b'[' => Tok::LBracket,
                        b']' => Tok::RBracket,
                        b',' => Tok::Comma,
                        b';' => Tok::Semi,
                        b':' => Tok::Colon,
                        b'=' => Tok::Assign,
                        b'+' => Tok::Plus,
                        b'-' => Tok::Minus,
                        b'*' => Tok::Star,
                        b'/' => Tok::Slash,
                        b'%' => Tok::Percent,
                        b'&' => Tok::Amp,
                        b'|' => Tok::Pipe,
                        b'^' => Tok::Caret,
                        b'!' => Tok::Bang,
                        b'<' => Tok::Lt,
                        b'>' => Tok::Gt,
                        other => {
                            return Err(CompileError::new(
                                line,
                                format!("unexpected character `{}`", other as char),
                            ))
                        }
                    };
                    (t, 1)
                };
                tokens.push(Token { tok, line });
                i += len;
            }
        }
    }
    tokens.push(Token {
        tok: Tok::Eof,
        line,
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn keywords_and_idents() {
        assert_eq!(
            toks("fn foo let iffy"),
            vec![
                Tok::Fn,
                Tok::Ident("foo".into()),
                Tok::Let,
                Tok::Ident("iffy".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn two_char_operators() {
        assert_eq!(
            toks("<< >> && || == != <= >= < >"),
            vec![
                Tok::Shl,
                Tok::Shr,
                Tok::AmpAmp,
                Tok::PipePipe,
                Tok::EqEq,
                Tok::NotEq,
                Tok::Le,
                Tok::Ge,
                Tok::Lt,
                Tok::Gt,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn comments_are_skipped_but_lines_advance() {
        let ts = lex("// comment\nfn").unwrap();
        assert_eq!(ts[0].tok, Tok::Fn);
        assert_eq!(ts[0].line, 2);
    }

    #[test]
    fn line_numbers_track_newlines() {
        let ts = lex("a\nb\n\nc").unwrap();
        let lines: Vec<u32> = ts.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4, 4]);
    }

    #[test]
    fn unknown_character_is_an_error() {
        let e = lex("fn @").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.message.contains('@'));
    }

    #[test]
    fn big_literal_out_of_range() {
        let e = lex("99999999999999999999999").unwrap_err();
        assert!(e.message.contains("out of range"));
    }
}
