//! Property tests over random CFGs: dominators, loops, reachability and the
//! CFG checksum must uphold their defining invariants on arbitrary shapes.

use csspgo_ir::builder::ModuleBuilder;
use csspgo_ir::dom::Dominators;
use csspgo_ir::inst::{CmpPred, Operand};
use csspgo_ir::loops::LoopInfo;
use csspgo_ir::probe::cfg_checksum;
use csspgo_ir::{cfg, BlockId, Function, Module, VReg};
use proptest::prelude::*;

/// Builds a function with `n` blocks and pseudo-random branch structure
/// derived from `edges`: block i terminates with a conditional branch to two
/// chosen targets, a jump, or a return.
fn build_cfg(n: usize, edges: &[(u8, u8, u8)]) -> Module {
    let mut mb = ModuleBuilder::new("prop");
    let f = mb.declare_function("f", 1);
    {
        let mut fb = mb.function_builder(f);
        let entry = fb.entry_block();
        let mut blocks = vec![entry];
        for _ in 1..n {
            blocks.push(fb.add_block());
        }
        for (i, &(kind, a, b)) in edges.iter().enumerate().take(n) {
            fb.switch_to(blocks[i]);
            let t1 = blocks[a as usize % n];
            let t2 = blocks[b as usize % n];
            match kind % 3 {
                0 => fb.ret(Some(Operand::Reg(VReg(0)))),
                1 => fb.br(t1),
                _ => {
                    let c = fb.cmp(CmpPred::Gt, Operand::Reg(VReg(0)), Operand::Imm(i as i64));
                    fb.cond_br(Operand::Reg(c), t1, t2);
                }
            }
        }
    }
    mb.finish()
}

fn cfg_strategy() -> impl Strategy<Value = (usize, Vec<(u8, u8, u8)>)> {
    (2usize..12).prop_flat_map(|n| {
        (
            Just(n),
            prop::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), n..=n),
        )
    })
}

/// Which blocks stay reachable from entry when every path through `avoid`
/// is cut — the naive oracle for dominance: `a` dominates `b` exactly when
/// removing `a` disconnects `b` from the entry.
fn reachable_avoiding(f: &Function, avoid: BlockId) -> Vec<bool> {
    let mut seen = vec![false; f.blocks.len()];
    if f.entry == avoid {
        return seen;
    }
    seen[f.entry.index()] = true;
    let mut stack = vec![f.entry];
    while let Some(b) = stack.pop() {
        for s in cfg::successors(f, b) {
            if s != avoid && !seen[s.index()] {
                seen[s.index()] = true;
                stack.push(s);
            }
        }
    }
    seen
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn module_always_verifies((n, edges) in cfg_strategy()) {
        let m = build_cfg(n, &edges);
        prop_assert!(csspgo_ir::verify::verify_module(&m).is_empty());
    }

    #[test]
    fn entry_dominates_every_reachable_block((n, edges) in cfg_strategy()) {
        let m = build_cfg(n, &edges);
        let f = &m.functions[0];
        let dom = Dominators::compute(f);
        let reach = cfg::reachable(f);
        for (i, &r) in reach.iter().enumerate() {
            let b = BlockId::from_index(i);
            if r {
                prop_assert!(dom.dominates(f.entry, b), "entry must dominate {b}");
                prop_assert!(dom.dominates(b, b), "dominance is reflexive");
            } else {
                prop_assert!(!dom.is_reachable(b));
            }
        }
    }

    #[test]
    fn idom_is_a_strict_dominator((n, edges) in cfg_strategy()) {
        let m = build_cfg(n, &edges);
        let f = &m.functions[0];
        let dom = Dominators::compute(f);
        for (b, _) in f.iter_blocks() {
            if let Some(idom) = dom.idom(b) {
                prop_assert!(dom.dominates(idom, b));
                prop_assert_ne!(idom, b);
            }
        }
    }

    #[test]
    fn rpo_is_a_permutation_of_reachable_blocks((n, edges) in cfg_strategy()) {
        let m = build_cfg(n, &edges);
        let f = &m.functions[0];
        let rpo = cfg::reverse_post_order(f);
        let reach = cfg::reachable(f);
        let reach_count = reach.iter().filter(|&&r| r).count();
        prop_assert_eq!(rpo.len(), reach_count);
        let mut seen = std::collections::HashSet::new();
        for b in &rpo {
            prop_assert!(seen.insert(*b), "duplicate {b} in RPO");
            prop_assert!(reach[b.index()]);
        }
        prop_assert_eq!(rpo.first(), Some(&f.entry));
    }

    #[test]
    fn loop_headers_dominate_their_latches((n, edges) in cfg_strategy()) {
        let m = build_cfg(n, &edges);
        let f = &m.functions[0];
        let dom = Dominators::compute(f);
        let li = LoopInfo::compute(f);
        for l in &li.loops {
            for &latch in &l.latches {
                prop_assert!(dom.dominates(l.header, latch));
                prop_assert!(l.contains(latch));
            }
            prop_assert!(l.contains(l.header));
            // Every loop block reaches the header without leaving the loop
            // (by construction of natural loops, the header dominates all).
            for &b in &l.blocks {
                prop_assert!(dom.dominates(l.header, b), "{} !dom {}", l.header, b);
            }
        }
    }

    #[test]
    fn dominance_matches_cut_vertex_oracle((n, edges) in cfg_strategy()) {
        let m = build_cfg(n, &edges);
        let f = &m.functions[0];
        let dom = Dominators::compute(f);
        let reach = cfg::reachable(f);
        for (ai, &ar) in reach.iter().enumerate() {
            if !ar {
                continue;
            }
            let a = BlockId::from_index(ai);
            let without_a = reachable_avoiding(f, a);
            for (bi, &br) in reach.iter().enumerate() {
                if !br {
                    continue;
                }
                let b = BlockId::from_index(bi);
                let oracle = a == b || !without_a[bi];
                prop_assert_eq!(
                    dom.dominates(a, b),
                    oracle,
                    "dominates({}, {}) disagrees with the cut-vertex oracle",
                    a,
                    b
                );
            }
        }
    }

    #[test]
    fn checksum_is_stable_and_shape_sensitive((n, edges) in cfg_strategy()) {
        let m1 = build_cfg(n, &edges);
        let m2 = build_cfg(n, &edges);
        prop_assert_eq!(
            cfg_checksum(&m1.functions[0]),
            cfg_checksum(&m2.functions[0]),
            "checksum must be deterministic"
        );
    }

    #[test]
    fn predecessors_and_successors_agree((n, edges) in cfg_strategy()) {
        let m = build_cfg(n, &edges);
        let f = &m.functions[0];
        let preds = cfg::predecessors(f);
        for (b, _) in f.iter_blocks() {
            for s in cfg::successors(f, b) {
                prop_assert!(preds[s.index()].contains(&b), "{b} -> {s} missing in preds");
            }
        }
        for (i, plist) in preds.iter().enumerate() {
            let b = BlockId::from_index(i);
            for &p in plist {
                prop_assert!(cfg::successors(f, p).contains(&b));
            }
        }
    }

    #[test]
    fn remove_unreachable_is_idempotent((n, edges) in cfg_strategy()) {
        let mut m = build_cfg(n, &edges);
        let f = &mut m.functions[0];
        cfg::remove_unreachable(f);
        prop_assert_eq!(cfg::remove_unreachable(f), 0);
        prop_assert!(csspgo_ir::verify::verify_module(&m).is_empty());
    }
}
