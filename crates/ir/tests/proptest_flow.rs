//! Property tests for the flow-recoverability machinery: on arbitrary CFGs
//! the Ball–Larus placement must be minimal (exactly the cyclomatic number
//! of counters) and the Kirchhoff reconstruction must recover the *exact*
//! block and edge counts of any simulated execution from only the co-tree
//! measurements — the bit-identity guarantee the sparse instrumentation
//! mode rests on.

use csspgo_ir::builder::ModuleBuilder;
use csspgo_ir::flow::{self, FlowEdge};
use csspgo_ir::inst::{CmpPred, InstKind, Operand};
use csspgo_ir::{cfg, BlockId, Function, Module, VReg};
use proptest::prelude::*;
use std::collections::HashMap;

/// Builds a function with `n` blocks and pseudo-random branch structure
/// derived from `edges` (same generator as `proptest_analyses`): block i
/// terminates with a return, a jump, or a conditional branch.
fn build_cfg(n: usize, edges: &[(u8, u8, u8)]) -> Module {
    let mut mb = ModuleBuilder::new("prop");
    let f = mb.declare_function("f", 1);
    {
        let mut fb = mb.function_builder(f);
        let entry = fb.entry_block();
        let mut blocks = vec![entry];
        for _ in 1..n {
            blocks.push(fb.add_block());
        }
        for (i, &(kind, a, b)) in edges.iter().enumerate().take(n) {
            fb.switch_to(blocks[i]);
            let t1 = blocks[a as usize % n];
            let t2 = blocks[b as usize % n];
            match kind % 3 {
                0 => fb.ret(Some(Operand::Reg(VReg(0)))),
                1 => fb.br(t1),
                _ => {
                    let c = fb.cmp(CmpPred::Gt, Operand::Reg(VReg(0)), Operand::Imm(i as i64));
                    fb.cond_br(Operand::Reg(c), t1, t2);
                }
            }
        }
    }
    mb.finish()
}

fn cfg_strategy() -> impl Strategy<Value = (usize, Vec<(u8, u8, u8)>)> {
    (2usize..12).prop_flat_map(|n| {
        (
            Just(n),
            prop::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), n..=n),
        )
    })
}

fn is_ret(f: &Function, b: BlockId) -> bool {
    matches!(
        f.block(b).terminator().map(|t| &t.kind),
        Some(InstKind::Ret { .. })
    )
}

/// BFS distance (in edges) from every block to the nearest reachable
/// returning block, walking predecessors backwards. `None` means the block
/// cannot reach an exit (e.g. it feeds an infinite loop).
fn exit_distance(f: &Function) -> Vec<Option<usize>> {
    let reach = cfg::reachable(f);
    let mut preds: Vec<Vec<BlockId>> = vec![Vec::new(); f.blocks.len()];
    for (bid, _) in f.iter_blocks() {
        if !reach[bid.index()] {
            continue;
        }
        for s in cfg::successors(f, bid) {
            preds[s.index()].push(bid);
        }
    }
    let mut dist = vec![None; f.blocks.len()];
    let mut queue = std::collections::VecDeque::new();
    for (bid, _) in f.iter_blocks() {
        if reach[bid.index()] && is_ret(f, bid) {
            dist[bid.index()] = Some(0);
            queue.push_back(bid);
        }
    }
    while let Some(b) = queue.pop_front() {
        let d = dist[b.index()].unwrap();
        for &p in &preds[b.index()] {
            if dist[p.index()].is_none() {
                dist[p.index()] = Some(d + 1);
                queue.push_back(p);
            }
        }
    }
    dist
}

/// Deterministic xorshift64 so failures replay exactly from the proptest
/// seed value.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
}

/// Simulates `walks` entry-to-exit executions, recording ground-truth
/// traversal counts for every augmented-graph edge. Successor choice is
/// restricted to blocks that can still reach an exit; after a step budget
/// the walk descends the exit-distance gradient, which strictly decreases
/// and guarantees termination on any CFG.
fn simulate(f: &Function, walks: u64, seed: u64, dist: &[Option<usize>]) -> HashMap<FlowEdge, u64> {
    let mut rng = XorShift(seed | 1);
    let mut truth: HashMap<FlowEdge, u64> = HashMap::new();
    for _ in 0..walks {
        let mut cur = f.entry;
        let mut budget = 64u32;
        loop {
            if is_ret(f, cur) {
                *truth.entry(FlowEdge::ToExit { from: cur }).or_insert(0) += 1;
                break;
            }
            let succs: Vec<BlockId> = cfg::successors(f, cur)
                .into_iter()
                .filter(|s| dist[s.index()].is_some())
                .collect();
            assert!(!succs.is_empty(), "exit-reaching block lost the exit");
            let next = if budget > 0 {
                budget -= 1;
                succs[(rng.next() % succs.len() as u64) as usize]
            } else {
                *succs
                    .iter()
                    .min_by_key(|s| dist[s.index()].unwrap())
                    .unwrap()
            };
            *truth
                .entry(FlowEdge::Cfg {
                    from: cur,
                    to: next,
                })
                .or_insert(0) += 1;
            cur = next;
        }
    }
    truth.insert(FlowEdge::FromExit, walks);
    truth
}

/// Block execution counts implied by the ground-truth edge traversals:
/// every visit leaves the block through exactly one outgoing edge (returns
/// through `ToExit`), so the block count is its outgoing flow.
fn truth_block_counts(f: &Function, truth: &HashMap<FlowEdge, u64>) -> HashMap<BlockId, u64> {
    let mut counts: HashMap<BlockId, u64> = HashMap::new();
    for (&e, &c) in truth {
        match e {
            FlowEdge::Cfg { from, .. } | FlowEdge::ToExit { from } => {
                *counts.entry(from).or_insert(0) += c;
            }
            FlowEdge::FromExit => {}
        }
    }
    for (bid, _) in f.iter_blocks() {
        counts.entry(bid).or_insert(0);
    }
    counts
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// The co-tree size is forced: a spanning tree of a connected graph on
    /// V nodes has V-1 edges, so exactly E - (V-1) counters remain.
    #[test]
    fn placement_is_minimal((n, edges) in cfg_strategy()) {
        let m = build_cfg(n, &edges);
        let f = &m.functions[0];
        let plan = flow::plan_function(f);
        if plan.full_fallback {
            prop_assert!(plan.counters.is_empty());
            return Ok(());
        }
        prop_assert_eq!(
            plan.counters.len(),
            plan.num_edges - (plan.num_nodes - 1),
            "counters must equal the cyclomatic number"
        );
        // Every planned counter measures a distinct edge.
        let mut seen = std::collections::HashSet::new();
        for site in &plan.counters {
            prop_assert!(seen.insert(site.edge), "duplicate counter for {}", site.edge);
        }
    }

    /// Round trip: simulate executions, keep only the planned co-tree
    /// measurements, reconstruct — block counts, edge counts and the entry
    /// count must all match the ground truth exactly.
    #[test]
    fn reconstruction_round_trips(
        (n, edges) in cfg_strategy(),
        walks in 1u64..24,
        seed in any::<u64>(),
    ) {
        let m = build_cfg(n, &edges);
        let f = &m.functions[0];
        let plan = flow::plan_function(f);
        if plan.full_fallback {
            return Ok(());
        }
        let dist = exit_distance(f);
        // full_fallback is false, so some reachable ret exists and the
        // entry can reach it (reachability is from the entry).
        prop_assert!(dist[f.entry.index()].is_some());
        let truth = simulate(f, walks, seed, &dist);

        let measured: HashMap<FlowEdge, u64> = plan
            .counters
            .iter()
            .map(|s| (s.edge, truth.get(&s.edge).copied().unwrap_or(0)))
            .collect();
        let rec = flow::reconstruct(f, &measured);
        prop_assert!(rec.is_some(), "certified placement must reconstruct");
        let rec = rec.unwrap();

        prop_assert_eq!(rec.entry_count, walks, "entry count is the walk count");
        let want_blocks = truth_block_counts(f, &truth);
        for (bid, want) in &want_blocks {
            prop_assert_eq!(
                rec.block_counts.get(bid).copied().unwrap_or(0),
                *want,
                "block {} count drifted",
                bid
            );
        }
        for &(from, to, got) in &rec.edge_counts {
            let want = truth
                .get(&FlowEdge::Cfg { from, to })
                .copied()
                .unwrap_or(0);
            prop_assert_eq!(got, want, "edge {} -> {} count drifted", from, to);
        }
    }
}
