//! Functions and basic blocks.

use crate::ids::{BlockId, FuncId, VReg};
use crate::inst::{Inst, InstKind};
use serde::{Deserialize, Serialize};

/// A basic block: a straight-line instruction sequence ending in a
/// terminator.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct BasicBlock {
    /// Instructions; the last one must be a terminator once the function is
    /// complete.
    pub insts: Vec<Inst>,
    /// Annotated profile count (execution frequency), if a profile has been
    /// applied. Maintained by every transformation (paper §II.B "profile
    /// maintenance").
    pub count: Option<u64>,
    /// Dead blocks are kept in place (ids are stable) but ignored.
    pub dead: bool,
}

impl BasicBlock {
    /// The block's terminator, if the block is complete.
    pub fn terminator(&self) -> Option<&Inst> {
        self.insts.last().filter(|i| i.is_terminator())
    }

    /// Mutable access to the terminator.
    pub fn terminator_mut(&mut self) -> Option<&mut Inst> {
        self.insts.last_mut().filter(|i| i.is_terminator())
    }

    /// Successor blocks (empty if the block is incomplete or returns).
    pub fn successors(&self) -> Vec<BlockId> {
        self.terminator()
            .map(|t| t.kind.successors())
            .unwrap_or_default()
    }

    /// Instructions excluding the terminator.
    pub fn body(&self) -> &[Inst] {
        match self.terminator() {
            Some(_) => &self.insts[..self.insts.len() - 1],
            None => &self.insts,
        }
    }
}

/// Annotated CFG edge counts, produced by flow inference
/// (`csspgo_core::inference` in its min-cost-flow mode) alongside the block
/// counts. Stored sparsely as a sorted `(from, to, count)` list so the
/// structure serializes cleanly and lookups stay deterministic.
///
/// Edge counts describe the CFG *at annotation time*; transformation passes
/// maintain block counts but not edge counts, so the optimizer pipeline
/// clears this annotation on entry rather than letting it go stale.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EdgeCounts {
    edges: Vec<(BlockId, BlockId, u64)>,
}

impl EdgeCounts {
    /// Builds the annotation from `(from, to, count)` triples. Duplicate
    /// `(from, to)` pairs are summed; the result is sorted for
    /// deterministic iteration and binary-search lookup.
    pub fn new(mut edges: Vec<(BlockId, BlockId, u64)>) -> Self {
        edges.sort_by_key(|&(f, t, _)| (f, t));
        edges.dedup_by(|next, kept| {
            if kept.0 == next.0 && kept.1 == next.1 {
                kept.2 += next.2;
                true
            } else {
                false
            }
        });
        EdgeCounts { edges }
    }

    /// The count recorded for edge `from → to`, if any.
    pub fn get(&self, from: BlockId, to: BlockId) -> Option<u64> {
        self.edges
            .binary_search_by_key(&(from, to), |&(f, t, _)| (f, t))
            .ok()
            .map(|i| self.edges[i].2)
    }

    /// All recorded edges in `(from, to)` order.
    pub fn iter(&self) -> impl Iterator<Item = (BlockId, BlockId, u64)> + '_ {
        self.edges.iter().copied()
    }

    /// Combined count of recorded edges leaving `from`.
    pub fn out_total(&self, from: BlockId) -> u64 {
        self.edges
            .iter()
            .filter(|&&(f, _, _)| f == from)
            .map(|&(_, _, c)| c)
            .sum()
    }

    /// Combined count of recorded edges entering `to`.
    pub fn in_total(&self, to: BlockId) -> u64 {
        self.edges
            .iter()
            .filter(|&&(_, t, _)| t == to)
            .map(|&(_, _, c)| c)
            .sum()
    }

    /// Number of recorded edges.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Whether no edges are recorded.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }
}

/// Where an annotated block count came from. Threaded through the annotation
/// path so downstream consumers (the WP lint family, `csspgo_diff`, bench
/// records) can tell raw measurements from salvaged or solver-invented
/// weight.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Provenance {
    /// Count comes straight from correlated samples (or exact counters) on a
    /// checksum-matching build.
    Sampled,
    /// Count was transferred from a stale profile by the static matcher.
    StaleMatched,
    /// Count was invented or materially adjusted by flow inference.
    Inferred,
    /// Count was recovered from a sparse spanning-tree counter placement by
    /// Kirchhoff elimination.
    Reconstructed,
}

impl Provenance {
    /// Stable lowercase tag for reports and JSON.
    pub fn tag(self) -> &'static str {
        match self {
            Provenance::Sampled => "sampled",
            Provenance::StaleMatched => "stale_matched",
            Provenance::Inferred => "inferred",
            Provenance::Reconstructed => "reconstructed",
        }
    }
}

/// Per-block provenance tags, stored sparsely like [`EdgeCounts`]: a sorted
/// `(block, tag)` list. Blocks without an entry have no annotated count (or
/// the annotation predates provenance tracking).
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProvenanceMap {
    tags: Vec<(BlockId, Provenance)>,
}

impl ProvenanceMap {
    /// Builds the map from `(block, tag)` pairs. Duplicates keep the first
    /// tag after a stable sort; the result is sorted for binary search.
    pub fn new(mut tags: Vec<(BlockId, Provenance)>) -> Self {
        tags.sort_by_key(|&(b, _)| b);
        tags.dedup_by_key(|&mut (b, _)| b);
        ProvenanceMap { tags }
    }

    /// The tag recorded for `block`, if any.
    pub fn get(&self, block: BlockId) -> Option<Provenance> {
        self.tags
            .binary_search_by_key(&block, |&(b, _)| b)
            .ok()
            .map(|i| self.tags[i].1)
    }

    /// All recorded tags in block order.
    pub fn iter(&self) -> impl Iterator<Item = (BlockId, Provenance)> + '_ {
        self.tags.iter().copied()
    }

    /// Number of tagged blocks.
    pub fn len(&self) -> usize {
        self.tags.len()
    }

    /// Whether no blocks are tagged.
    pub fn is_empty(&self) -> bool {
        self.tags.is_empty()
    }
}

/// The block layout decided by the layout pass: hot blocks in order, then
/// (optionally, with function splitting) cold blocks placed in a separate
/// cold region of the binary.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct BlockLayout {
    /// Hot-part order; must start with the entry block.
    pub hot: Vec<BlockId>,
    /// Cold-part order (empty when the function is not split).
    pub cold: Vec<BlockId>,
}

impl BlockLayout {
    /// All placed blocks in emission order (hot then cold).
    pub fn iter(&self) -> impl Iterator<Item = BlockId> + '_ {
        self.hot.iter().chain(self.cold.iter()).copied()
    }
}

/// A function: parameters, virtual registers, and a CFG of basic blocks.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Function {
    /// This function's id within its module.
    pub id: FuncId,
    /// Source-level name.
    pub name: String,
    /// Stable GUID derived from the name ([`crate::probe::function_guid`]).
    pub guid: u64,
    /// Number of parameters; parameters occupy `VReg(0)..VReg(num_params)`.
    pub num_params: usize,
    /// Basic blocks, indexed by [`BlockId`]. Ids are stable; dead blocks are
    /// flagged rather than removed.
    pub blocks: Vec<BasicBlock>,
    /// The entry block.
    pub entry: BlockId,
    /// Source line of the function header (AutoFDO correlates on offsets from
    /// this line).
    pub start_line: u32,
    /// CFG checksum captured when pseudo-probes were inserted.
    pub probe_checksum: Option<u64>,
    /// Next probe index to hand out (probe indices are 1-based; 0 reserved).
    pub next_probe_index: u32,
    /// Block layout decided by the layout pass; `None` means id order.
    pub layout: Option<BlockLayout>,
    /// Annotated entry count, if a profile has been applied.
    pub entry_count: Option<u64>,
    /// Annotated CFG edge counts, if flow inference produced them. Cleared
    /// by the optimizer pipeline (passes maintain block counts only).
    /// Absent in serialized modules from before edge inference existed
    /// (the vendored serde treats a missing `Option` field as `None`).
    pub edge_counts: Option<EdgeCounts>,
    /// Per-block weight provenance, written alongside block counts by the
    /// annotation path. Cleared by the optimizer pipeline together with
    /// `edge_counts` (cloning passes would leave it stale). Absent in
    /// serialized modules from before provenance tracking existed.
    pub count_provenance: Option<ProvenanceMap>,
    next_vreg: u32,
}

impl Function {
    /// Creates an empty function with one (empty) entry block.
    pub fn new(id: FuncId, name: impl Into<String>, num_params: usize) -> Self {
        let name = name.into();
        let guid = crate::probe::function_guid(&name);
        Function {
            id,
            guid,
            name,
            num_params,
            blocks: vec![BasicBlock::default()],
            entry: BlockId(0),
            start_line: 0,
            probe_checksum: None,
            next_probe_index: 1,
            layout: None,
            entry_count: None,
            edge_counts: None,
            count_provenance: None,
            next_vreg: num_params as u32,
        }
    }

    /// Allocates a fresh virtual register.
    pub fn new_vreg(&mut self) -> VReg {
        let r = VReg(self.next_vreg);
        self.next_vreg += 1;
        r
    }

    /// Number of virtual registers allocated so far.
    pub fn num_vregs(&self) -> usize {
        self.next_vreg as usize
    }

    /// Reserves register numbers up to `n` (used when merging functions
    /// during inlining).
    pub fn reserve_vregs(&mut self, n: u32) {
        self.next_vreg = self.next_vreg.max(n);
    }

    /// The parameter registers.
    pub fn params(&self) -> impl Iterator<Item = VReg> {
        (0..self.num_params as u32).map(VReg)
    }

    /// Appends a new, empty, live block.
    pub fn add_block(&mut self) -> BlockId {
        let id = BlockId::from_index(self.blocks.len());
        self.blocks.push(BasicBlock::default());
        id
    }

    /// Shared access to a block.
    pub fn block(&self, id: BlockId) -> &BasicBlock {
        &self.blocks[id.index()]
    }

    /// Mutable access to a block.
    pub fn block_mut(&mut self, id: BlockId) -> &mut BasicBlock {
        &mut self.blocks[id.index()]
    }

    /// Iterates live blocks in id order.
    pub fn iter_blocks(&self) -> impl Iterator<Item = (BlockId, &BasicBlock)> {
        self.blocks
            .iter()
            .enumerate()
            .filter(|(_, b)| !b.dead)
            .map(|(i, b)| (BlockId::from_index(i), b))
    }

    /// Number of live blocks.
    pub fn num_live_blocks(&self) -> usize {
        self.blocks.iter().filter(|b| !b.dead).count()
    }

    /// Emission order: the decided layout, or live blocks in id order.
    pub fn linear_order(&self) -> Vec<BlockId> {
        match &self.layout {
            Some(l) => l.iter().collect(),
            None => self.iter_blocks().map(|(id, _)| id).collect(),
        }
    }

    /// Allocates the next probe index (1-based, dense per function).
    pub fn alloc_probe_index(&mut self) -> u32 {
        let i = self.next_probe_index;
        self.next_probe_index += 1;
        i
    }

    /// Total number of instructions in live blocks (a cheap size proxy).
    pub fn size(&self) -> usize {
        self.iter_blocks().map(|(_, b)| b.insts.len()).sum()
    }

    /// Finds the block-probe index anchored in each live block, if probes
    /// were inserted. Returns `(probe index → block)` for probes owned by
    /// this function that have not been inlined from elsewhere.
    pub fn block_probe_map(&self) -> std::collections::HashMap<u32, BlockId> {
        let mut map = std::collections::HashMap::new();
        for (bid, block) in self.iter_blocks() {
            for inst in &block.insts {
                if let InstKind::PseudoProbe {
                    owner,
                    index,
                    kind: crate::probe::ProbeKind::Block,
                    inline_stack,
                    ..
                } = &inst.kind
                {
                    if *owner == self.id && inline_stack.is_empty() {
                        map.insert(*index, bid);
                    }
                }
            }
        }
        map
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::Operand;

    fn ret(v: i64) -> Inst {
        Inst::synthetic(InstKind::Ret {
            value: Some(Operand::Imm(v)),
        })
    }

    #[test]
    fn new_function_has_entry_block() {
        let f = Function::new(FuncId(0), "f", 2);
        assert_eq!(f.entry, BlockId(0));
        assert_eq!(f.num_live_blocks(), 1);
        assert_eq!(f.num_vregs(), 2); // params
        assert_eq!(f.params().collect::<Vec<_>>(), vec![VReg(0), VReg(1)]);
    }

    #[test]
    fn vreg_allocation_is_dense() {
        let mut f = Function::new(FuncId(0), "f", 1);
        assert_eq!(f.new_vreg(), VReg(1));
        assert_eq!(f.new_vreg(), VReg(2));
        f.reserve_vregs(10);
        assert_eq!(f.new_vreg(), VReg(10));
    }

    #[test]
    fn terminator_and_body() {
        let mut f = Function::new(FuncId(0), "f", 0);
        let b = f.block_mut(BlockId(0));
        b.insts.push(Inst::synthetic(InstKind::Copy {
            dst: VReg(0),
            src: Operand::Imm(1),
        }));
        assert!(b.terminator().is_none());
        b.insts.push(ret(0));
        assert!(b.terminator().is_some());
        assert_eq!(b.body().len(), 1);
    }

    #[test]
    fn dead_blocks_are_skipped() {
        let mut f = Function::new(FuncId(0), "f", 0);
        let b1 = f.add_block();
        f.block_mut(b1).dead = true;
        assert_eq!(f.num_live_blocks(), 1);
        assert_eq!(f.linear_order(), vec![BlockId(0)]);
    }

    #[test]
    fn layout_overrides_linear_order() {
        let mut f = Function::new(FuncId(0), "f", 0);
        let b1 = f.add_block();
        let b2 = f.add_block();
        f.layout = Some(BlockLayout {
            hot: vec![BlockId(0), b2],
            cold: vec![b1],
        });
        assert_eq!(f.linear_order(), vec![BlockId(0), b2, b1]);
    }

    #[test]
    fn edge_counts_sort_sum_and_lookup() {
        let e = EdgeCounts::new(vec![
            (BlockId(1), BlockId(2), 5),
            (BlockId(0), BlockId(1), 7),
            (BlockId(1), BlockId(2), 3),
            (BlockId(0), BlockId(2), 2),
        ]);
        assert_eq!(e.len(), 3);
        assert_eq!(e.get(BlockId(1), BlockId(2)), Some(8));
        assert_eq!(e.get(BlockId(2), BlockId(0)), None);
        assert_eq!(e.out_total(BlockId(0)), 9);
        assert_eq!(e.in_total(BlockId(2)), 10);
        let order: Vec<_> = e.iter().map(|(f, t, _)| (f.0, t.0)).collect();
        assert_eq!(order, vec![(0, 1), (0, 2), (1, 2)]);
    }

    #[test]
    fn probe_indices_are_one_based() {
        let mut f = Function::new(FuncId(0), "f", 0);
        assert_eq!(f.alloc_probe_index(), 1);
        assert_eq!(f.alloc_probe_index(), 2);
    }
}
