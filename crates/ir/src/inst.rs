//! Instructions.
//!
//! The IR is a three-address register machine. Each [`Inst`] pairs an
//! [`InstKind`] with a [`DebugLoc`]. Blocks end in exactly one terminator
//! (`Br`, `CondBr`, `Switch` or `Ret`).

use crate::debuginfo::DebugLoc;
use crate::ids::{BlockId, FuncId, GlobalId, VReg};
use crate::probe::{ProbeKind, ProbeSite};
use serde::{Deserialize, Serialize};
use std::fmt;

/// An instruction operand: a virtual register or an immediate.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum Operand {
    /// Value of a virtual register.
    Reg(VReg),
    /// A 64-bit immediate.
    Imm(i64),
}

impl Operand {
    /// The register, if this operand is one.
    pub fn as_reg(self) -> Option<VReg> {
        match self {
            Operand::Reg(r) => Some(r),
            Operand::Imm(_) => None,
        }
    }

    /// The immediate, if this operand is one.
    pub fn as_imm(self) -> Option<i64> {
        match self {
            Operand::Reg(_) => None,
            Operand::Imm(v) => Some(v),
        }
    }
}

impl From<VReg> for Operand {
    fn from(r: VReg) -> Self {
        Operand::Reg(r)
    }
}

impl From<i64> for Operand {
    fn from(v: i64) -> Self {
        Operand::Imm(v)
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Imm(v) => write!(f, "{v}"),
        }
    }
}

/// Integer binary operations.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    /// Division; division by zero yields 0 (the simulator is total).
    Div,
    /// Remainder; remainder by zero yields 0.
    Rem,
    And,
    Or,
    Xor,
    Shl,
    Shr,
}

impl BinOp {
    /// Evaluates the operation on concrete values (wrapping semantics).
    pub fn eval(self, lhs: i64, rhs: i64) -> i64 {
        match self {
            BinOp::Add => lhs.wrapping_add(rhs),
            BinOp::Sub => lhs.wrapping_sub(rhs),
            BinOp::Mul => lhs.wrapping_mul(rhs),
            BinOp::Div => {
                if rhs == 0 {
                    0
                } else {
                    lhs.wrapping_div(rhs)
                }
            }
            BinOp::Rem => {
                if rhs == 0 {
                    0
                } else {
                    lhs.wrapping_rem(rhs)
                }
            }
            BinOp::And => lhs & rhs,
            BinOp::Or => lhs | rhs,
            BinOp::Xor => lhs ^ rhs,
            BinOp::Shl => lhs.wrapping_shl((rhs & 63) as u32),
            BinOp::Shr => lhs.wrapping_shr((rhs & 63) as u32),
        }
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Add => "add",
            BinOp::Sub => "sub",
            BinOp::Mul => "mul",
            BinOp::Div => "div",
            BinOp::Rem => "rem",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
            BinOp::Shl => "shl",
            BinOp::Shr => "shr",
        };
        f.write_str(s)
    }
}

/// Integer comparison predicates.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum CmpPred {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpPred {
    /// Evaluates the predicate; true is 1, false is 0.
    pub fn eval(self, lhs: i64, rhs: i64) -> i64 {
        let b = match self {
            CmpPred::Eq => lhs == rhs,
            CmpPred::Ne => lhs != rhs,
            CmpPred::Lt => lhs < rhs,
            CmpPred::Le => lhs <= rhs,
            CmpPred::Gt => lhs > rhs,
            CmpPred::Ge => lhs >= rhs,
        };
        i64::from(b)
    }

    /// The predicate testing the opposite condition.
    pub fn inverse(self) -> CmpPred {
        match self {
            CmpPred::Eq => CmpPred::Ne,
            CmpPred::Ne => CmpPred::Eq,
            CmpPred::Lt => CmpPred::Ge,
            CmpPred::Le => CmpPred::Gt,
            CmpPred::Gt => CmpPred::Le,
            CmpPred::Ge => CmpPred::Lt,
        }
    }
}

impl fmt::Display for CmpPred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpPred::Eq => "eq",
            CmpPred::Ne => "ne",
            CmpPred::Lt => "lt",
            CmpPred::Le => "le",
            CmpPred::Gt => "gt",
            CmpPred::Ge => "ge",
        };
        f.write_str(s)
    }
}

/// The operation an instruction performs.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum InstKind {
    /// `dst = src`.
    Copy { dst: VReg, src: Operand },
    /// `dst = lhs <op> rhs`.
    Bin {
        op: BinOp,
        dst: VReg,
        lhs: Operand,
        rhs: Operand,
    },
    /// `dst = lhs <pred> rhs` (0 or 1).
    Cmp {
        pred: CmpPred,
        dst: VReg,
        lhs: Operand,
        rhs: Operand,
    },
    /// `dst = cond != 0 ? on_true : on_false` — produced by if-conversion.
    Select {
        dst: VReg,
        cond: Operand,
        on_true: Operand,
        on_false: Operand,
    },
    /// `dst = global[index]`. Out-of-bounds reads yield 0.
    Load {
        dst: VReg,
        global: GlobalId,
        index: Operand,
    },
    /// `global[index] = value`. Out-of-bounds writes are dropped.
    Store {
        global: GlobalId,
        index: Operand,
        value: Operand,
    },
    /// Direct call. `dst` receives the return value if present.
    Call {
        dst: Option<VReg>,
        callee: FuncId,
        args: Vec<Operand>,
    },
    /// Return from the current function.
    Ret { value: Option<Operand> },
    /// Unconditional branch.
    Br { target: BlockId },
    /// Two-way conditional branch (`cond != 0` takes `then_bb`).
    CondBr {
        cond: Operand,
        then_bb: BlockId,
        else_bb: BlockId,
    },
    /// Multi-way dispatch on an integer value.
    Switch {
        value: Operand,
        cases: Vec<(i64, BlockId)>,
        default: BlockId,
    },
    /// Pseudo-instrumentation anchor (the paper's §III.A).
    ///
    /// Executes as a no-op and lowers to *metadata only*. `owner` is the
    /// function the probe was originally inserted into, `index` its dense
    /// probe number within that function, and `inline_stack` the chain of
    /// *call-site probes* through which it was inlined (outermost first) —
    /// the probe-based analogue of [`DebugLoc::inline_stack`].
    ///
    /// `factor` is the probe's **duplication factor**: this copy represents
    /// `1/factor` of the probe's weight, so across all co-existing copies of
    /// one probe id (same `owner`, `index` and `inline_stack`) the weights
    /// sum to at most 1. Probes start at 1; `unroll` and `tail_dup` multiply
    /// the factor of every copy they create, and later merges/DCE may drop
    /// copies (the sum only shrinks). Mirrors the paper's probe
    /// duplication-factor metadata (§III.A); `probe_verify` enforces the
    /// invariant between passes.
    PseudoProbe {
        owner: FuncId,
        index: u32,
        kind: ProbeKind,
        inline_stack: Vec<ProbeSite>,
        factor: u32,
    },
    /// Traditional instrumentation: increment profile counter `counter`.
    ///
    /// Lowers to a real load/add/store sequence and acts as a code-merge
    /// barrier, reproducing instrumentation-based PGO's run-time overhead.
    CounterIncr { counter: u32 },
}

impl InstKind {
    /// Whether this kind terminates a basic block.
    pub fn is_terminator(&self) -> bool {
        matches!(
            self,
            InstKind::Ret { .. }
                | InstKind::Br { .. }
                | InstKind::CondBr { .. }
                | InstKind::Switch { .. }
        )
    }

    /// Successor blocks of a terminator (empty for non-terminators and `Ret`).
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            InstKind::Br { target } => vec![*target],
            InstKind::CondBr {
                then_bb, else_bb, ..
            } => vec![*then_bb, *else_bb],
            InstKind::Switch { cases, default, .. } => {
                let mut out: Vec<BlockId> = cases.iter().map(|&(_, b)| b).collect();
                out.push(*default);
                out
            }
            _ => Vec::new(),
        }
    }

    /// Rewrites every successor edge through `f`.
    pub fn map_successors(&mut self, mut f: impl FnMut(BlockId) -> BlockId) {
        match self {
            InstKind::Br { target } => *target = f(*target),
            InstKind::CondBr {
                then_bb, else_bb, ..
            } => {
                *then_bb = f(*then_bb);
                *else_bb = f(*else_bb);
            }
            InstKind::Switch { cases, default, .. } => {
                for (_, b) in cases.iter_mut() {
                    *b = f(*b);
                }
                *default = f(*default);
            }
            _ => {}
        }
    }

    /// The register this instruction defines, if any.
    pub fn def(&self) -> Option<VReg> {
        match self {
            InstKind::Copy { dst, .. }
            | InstKind::Bin { dst, .. }
            | InstKind::Cmp { dst, .. }
            | InstKind::Select { dst, .. }
            | InstKind::Load { dst, .. } => Some(*dst),
            InstKind::Call { dst, .. } => *dst,
            _ => None,
        }
    }

    /// Collects the operands this instruction reads.
    pub fn uses(&self) -> Vec<Operand> {
        match self {
            InstKind::Copy { src, .. } => vec![*src],
            InstKind::Bin { lhs, rhs, .. } | InstKind::Cmp { lhs, rhs, .. } => vec![*lhs, *rhs],
            InstKind::Select {
                cond,
                on_true,
                on_false,
                ..
            } => vec![*cond, *on_true, *on_false],
            InstKind::Load { index, .. } => vec![*index],
            InstKind::Store { index, value, .. } => vec![*index, *value],
            InstKind::Call { args, .. } => args.clone(),
            InstKind::Ret { value } => value.iter().copied().collect(),
            InstKind::CondBr { cond, .. } => vec![*cond],
            InstKind::Switch { value, .. } => vec![*value],
            InstKind::Br { .. } | InstKind::PseudoProbe { .. } | InstKind::CounterIncr { .. } => {
                Vec::new()
            }
        }
    }

    /// Rewrites every register *use* through `f` (defs are untouched).
    pub fn map_uses(&mut self, mut f: impl FnMut(VReg) -> Operand) {
        let map = |op: &mut Operand, f: &mut dyn FnMut(VReg) -> Operand| {
            if let Operand::Reg(r) = *op {
                *op = f(r);
            }
        };
        match self {
            InstKind::Copy { src, .. } => map(src, &mut f),
            InstKind::Bin { lhs, rhs, .. } | InstKind::Cmp { lhs, rhs, .. } => {
                map(lhs, &mut f);
                map(rhs, &mut f);
            }
            InstKind::Select {
                cond,
                on_true,
                on_false,
                ..
            } => {
                map(cond, &mut f);
                map(on_true, &mut f);
                map(on_false, &mut f);
            }
            InstKind::Load { index, .. } => map(index, &mut f),
            InstKind::Store { index, value, .. } => {
                map(index, &mut f);
                map(value, &mut f);
            }
            InstKind::Call { args, .. } => {
                for a in args.iter_mut() {
                    map(a, &mut f);
                }
            }
            InstKind::Ret { value } => {
                if let Some(v) = value {
                    map(v, &mut f);
                }
            }
            InstKind::CondBr { cond, .. } => map(cond, &mut f),
            InstKind::Switch { value, .. } => map(value, &mut f),
            InstKind::Br { .. } | InstKind::PseudoProbe { .. } | InstKind::CounterIncr { .. } => {}
        }
    }

    /// Whether the instruction has an observable effect beyond its `def`
    /// (memory writes, calls, control flow, instrumentation).
    pub fn has_side_effects(&self) -> bool {
        matches!(
            self,
            InstKind::Store { .. }
                | InstKind::Call { .. }
                | InstKind::CounterIncr { .. }
                | InstKind::PseudoProbe { .. }
        ) || self.is_terminator()
    }
}

/// An instruction: an operation plus its source location.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct Inst {
    pub kind: InstKind,
    pub loc: DebugLoc,
}

impl Inst {
    /// Builds an instruction with the given location.
    pub fn new(kind: InstKind, loc: DebugLoc) -> Self {
        Inst { kind, loc }
    }

    /// Builds an instruction with no location.
    pub fn synthetic(kind: InstKind) -> Self {
        Inst {
            kind,
            loc: DebugLoc::none(),
        }
    }

    /// Whether this instruction terminates a block.
    pub fn is_terminator(&self) -> bool {
        self.kind.is_terminator()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binop_eval_total() {
        assert_eq!(BinOp::Div.eval(10, 0), 0);
        assert_eq!(BinOp::Rem.eval(10, 0), 0);
        assert_eq!(BinOp::Add.eval(i64::MAX, 1), i64::MIN);
        assert_eq!(BinOp::Shl.eval(1, 64), 1); // shift amount masked
    }

    #[test]
    fn cmp_inverse_is_involution() {
        for p in [
            CmpPred::Eq,
            CmpPred::Ne,
            CmpPred::Lt,
            CmpPred::Le,
            CmpPred::Gt,
            CmpPred::Ge,
        ] {
            assert_eq!(p.inverse().inverse(), p);
            for (a, b) in [(1, 2), (2, 2), (3, 2)] {
                assert_eq!(p.eval(a, b), 1 - p.inverse().eval(a, b));
            }
        }
    }

    #[test]
    fn successors_of_terminators() {
        let br = InstKind::Br { target: BlockId(1) };
        assert_eq!(br.successors(), vec![BlockId(1)]);
        let cb = InstKind::CondBr {
            cond: Operand::Imm(1),
            then_bb: BlockId(1),
            else_bb: BlockId(2),
        };
        assert_eq!(cb.successors(), vec![BlockId(1), BlockId(2)]);
        let sw = InstKind::Switch {
            value: Operand::Imm(0),
            cases: vec![(0, BlockId(3)), (1, BlockId(4))],
            default: BlockId(5),
        };
        assert_eq!(sw.successors(), vec![BlockId(3), BlockId(4), BlockId(5)]);
        assert!(InstKind::Ret { value: None }.successors().is_empty());
    }

    #[test]
    fn map_successors_rewrites_all_edges() {
        let mut sw = InstKind::Switch {
            value: Operand::Imm(0),
            cases: vec![(0, BlockId(3))],
            default: BlockId(5),
        };
        sw.map_successors(|b| BlockId(b.0 + 10));
        assert_eq!(sw.successors(), vec![BlockId(13), BlockId(15)]);
    }

    #[test]
    fn defs_and_uses() {
        let call = InstKind::Call {
            dst: Some(VReg(3)),
            callee: FuncId(0),
            args: vec![Operand::Reg(VReg(1)), Operand::Imm(2)],
        };
        assert_eq!(call.def(), Some(VReg(3)));
        assert_eq!(call.uses().len(), 2);
        assert!(call.has_side_effects());

        let probe = InstKind::PseudoProbe {
            owner: FuncId(0),
            index: 1,
            kind: ProbeKind::Block,
            inline_stack: Vec::new(),
            factor: 1,
        };
        assert_eq!(probe.def(), None);
        assert!(probe.uses().is_empty());
        // Probes may not be deleted as dead code: modelled as a side effect.
        assert!(probe.has_side_effects());
    }

    #[test]
    fn map_uses_substitutes_registers() {
        let mut add = InstKind::Bin {
            op: BinOp::Add,
            dst: VReg(2),
            lhs: Operand::Reg(VReg(0)),
            rhs: Operand::Reg(VReg(1)),
        };
        add.map_uses(|r| {
            if r == VReg(0) {
                Operand::Imm(7)
            } else {
                Operand::Reg(r)
            }
        });
        assert_eq!(add.uses(), vec![Operand::Imm(7), Operand::Reg(VReg(1))]);
        // def untouched
        assert_eq!(add.def(), Some(VReg(2)));
    }
}
