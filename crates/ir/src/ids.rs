//! Small index newtypes used throughout the IR.
//!
//! Each id is a dense index into the owning container (`Module::functions`,
//! `Function::blocks`, …). Newtypes keep them from being confused with one
//! another ([C-NEWTYPE]).

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize,
        )]
        pub struct $name(pub u32);

        impl $name {
            /// Returns the raw index.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }

            /// Builds an id from a raw index.
            ///
            /// # Panics
            ///
            /// Panics if `index` does not fit in `u32`.
            #[inline]
            pub fn from_index(index: usize) -> Self {
                Self(u32::try_from(index).expect("id index overflow"))
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

define_id!(
    /// Identifies a function within a [`crate::Module`].
    FuncId,
    "fn"
);

impl FuncId {
    /// Sentinel for "no function" (e.g. compiler-synthesized debug scopes).
    pub const INVALID: FuncId = FuncId(u32::MAX);
}
define_id!(
    /// Identifies a basic block within a [`crate::Function`].
    BlockId,
    "bb"
);
define_id!(
    /// Identifies a global array within a [`crate::Module`].
    GlobalId,
    "g"
);
define_id!(
    /// A virtual register local to one function.
    VReg,
    "%"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_uses_prefix() {
        assert_eq!(FuncId(3).to_string(), "fn3");
        assert_eq!(BlockId(0).to_string(), "bb0");
        assert_eq!(GlobalId(7).to_string(), "g7");
        assert_eq!(VReg(12).to_string(), "%12");
    }

    #[test]
    fn index_roundtrip() {
        let b = BlockId::from_index(42);
        assert_eq!(b.index(), 42);
    }

    #[test]
    fn ordering_follows_raw_value() {
        assert!(BlockId(1) < BlockId(2));
        assert!(FuncId(0) < FuncId(1));
    }
}
