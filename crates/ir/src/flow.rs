//! Flow-recoverability machinery: the augmented flow graph, Ball–Larus/
//! Knuth minimal counter placement, and Kirchhoff elimination recovering
//! full block/edge counts from sparse measurements.
//!
//! The classic observation (Knuth; Ball & Larus) is that execution counts
//! form a *circulation* once the CFG is augmented with a virtual exit node
//! `X`: every returning block gets an edge to `X`, and `X` closes the loop
//! back to the entry (one traversal per function invocation). Kirchhoff's
//! law — flow in equals flow out at every node — then determines all edge
//! counts from any set that leaves the *unmeasured* edges acyclic as an
//! undirected graph. The cheapest such set is the co-tree of a spanning
//! tree, and putting the spanning tree on the highest-frequency edges
//! (loop-nested edges here) pushes the counters onto the coldest ones.
//!
//! This module is deliberately placed in `csspgo_ir` rather than the
//! analysis crate so `csspgo_opt::instrument` can plan placements without a
//! dependency cycle — the same precedent as `probe_verify`. The *prover*
//! that certifies a placement (and the PP lint family) lives in
//! `csspgo_analysis::dataflow`.

use crate::cfg;
use crate::function::Function;
use crate::ids::BlockId;
use crate::inst::InstKind;
use crate::loops::LoopInfo;
use std::collections::HashMap;

/// An edge of the augmented flow graph. Parallel CFG edges (e.g. a
/// conditional branch with both arms on the same target) are collapsed into
/// one flow edge carrying their combined traversal count, matching
/// [`cfg::successors`]' deduplication.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FlowEdge {
    /// A real CFG edge `from → to`.
    Cfg { from: BlockId, to: BlockId },
    /// The virtual edge from a returning block to the exit node.
    ToExit { from: BlockId },
    /// The virtual back edge from the exit node to the entry, traversed
    /// once per function invocation.
    FromExit,
}

impl std::fmt::Display for FlowEdge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FlowEdge::Cfg { from, to } => write!(f, "bb{} -> bb{}", from.0, to.0),
            FlowEdge::ToExit { from } => write!(f, "bb{} -> exit", from.0),
            FlowEdge::FromExit => write!(f, "exit -> entry"),
        }
    }
}

/// Where a counter for an edge physically lives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CounterHost {
    /// An existing block whose execution count equals the edge's traversal
    /// count (the block uniquely witnesses the edge).
    Block(BlockId),
    /// No existing block witnesses the edge (it is critical): the
    /// instrumentation pass must split it with a fresh counter-only block.
    Split,
}

/// One planned counter: the co-tree edge it measures and where it lives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CounterSite {
    /// The augmented-graph edge this counter measures.
    pub edge: FlowEdge,
    /// The physical placement.
    pub host: CounterHost,
}

/// A minimal counter placement for one function.
#[derive(Clone, Debug, Default)]
pub struct MeasurementPlan {
    /// Counter sites, one per co-tree edge, in deterministic order.
    pub counters: Vec<CounterSite>,
    /// Total number of augmented-graph edges (tree + counted).
    pub num_edges: usize,
    /// Number of augmented-graph nodes (reachable blocks + the exit node).
    pub num_nodes: usize,
    /// True when the function has no reachable return: the circulation
    /// cannot be closed, so callers should fall back to per-block counters.
    pub full_fallback: bool,
}

/// Enumerates the augmented flow graph's edges in deterministic order:
/// reverse post-order over reachable blocks, each block's real successors
/// first (in terminator order), returning blocks contributing their
/// `ToExit` edge in place, and the virtual `FromExit` edge last.
pub fn flow_edges(func: &Function) -> Vec<FlowEdge> {
    let mut edges = Vec::new();
    let mut has_exit = false;
    for from in cfg::reverse_post_order(func) {
        let block = func.block(from);
        if matches!(
            block.terminator().map(|t| &t.kind),
            Some(InstKind::Ret { .. })
        ) {
            edges.push(FlowEdge::ToExit { from });
            has_exit = true;
        } else {
            for to in cfg::successors(func, from) {
                edges.push(FlowEdge::Cfg { from, to });
            }
        }
    }
    if has_exit {
        edges.push(FlowEdge::FromExit);
    }
    edges
}

/// The undirected endpoints of `edge` as augmented-graph node indices,
/// where the virtual exit node is `num_blocks` and blocks use their id
/// index.
pub fn endpoints(edge: FlowEdge, func: &Function, exit_node: usize) -> (usize, usize) {
    match edge {
        FlowEdge::Cfg { from, to } => (from.index(), to.index()),
        FlowEdge::ToExit { from } => (from.index(), exit_node),
        FlowEdge::FromExit => (exit_node, func.entry.index()),
    }
}

/// Decides which existing block (if any) uniquely witnesses `edge`:
///
/// * a real edge `a → b` is witnessed by `a` when `b` is `a`'s only
///   successor, else by `b` when `a` is `b`'s only predecessor and `b` is
///   not the entry (the entry also absorbs the virtual `FromExit` inflow);
/// * a `ToExit` edge is always witnessed by the returning block itself;
/// * the `FromExit` edge is witnessed by the entry only when the entry has
///   no real predecessors.
///
/// `preds` must be restricted to reachable blocks. Returns `None` when no
/// block witnesses the edge — for a real edge that means it is *critical*
/// and needs a split block; for `FromExit` it means the edge cannot host a
/// counter at all and must be kept on the spanning tree.
pub fn counter_host(
    func: &Function,
    preds: &[Vec<BlockId>],
    edge: FlowEdge,
) -> Option<CounterHost> {
    match edge {
        FlowEdge::Cfg { from, to } => {
            if cfg::successors(func, from).len() == 1 {
                Some(CounterHost::Block(from))
            } else if to != func.entry && preds[to.index()].len() == 1 {
                Some(CounterHost::Block(to))
            } else {
                Some(CounterHost::Split)
            }
        }
        FlowEdge::ToExit { from } => Some(CounterHost::Block(from)),
        FlowEdge::FromExit => {
            if preds[func.entry.index()].is_empty() {
                Some(CounterHost::Block(func.entry))
            } else {
                None
            }
        }
    }
}

/// Predecessor lists restricted to reachable blocks (the augmented graph
/// only spans reachable blocks; a live-but-unreachable predecessor would
/// otherwise distort the hosting rules).
pub fn reachable_predecessors(func: &Function) -> Vec<Vec<BlockId>> {
    let reach = cfg::reachable(func);
    let mut preds = vec![Vec::new(); func.blocks.len()];
    for (bid, _) in func.iter_blocks() {
        if !reach[bid.index()] {
            continue;
        }
        for succ in cfg::successors(func, bid) {
            let list = &mut preds[succ.index()];
            if !list.contains(&bid) {
                list.push(bid);
            }
        }
    }
    preds
}

/// A small union–find over augmented-graph nodes (used by Kruskal here and
/// by the redundancy check in the analysis-crate prover).
#[derive(Clone, Debug)]
pub struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    /// `n` singleton components.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
        }
    }

    /// Representative of `x`'s component (with path halving).
    pub fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    /// Merges the components of `a` and `b`; false if already joined.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        self.parent[ra] = rb;
        true
    }
}

/// Plans a minimal counter placement for `func`: a max-weight spanning tree
/// of the augmented flow graph keeps the (estimated) hottest edges
/// uninstrumented, and every co-tree edge gets a counter site. Edge weight
/// is the loop-nesting depth shared by its endpoints, so loop back edges
/// and loop bodies land on the tree and counters land on the cold edges —
/// the Ball–Larus placement with a static frequency estimate.
///
/// Functions whose circulation cannot be closed (no reachable `ret`) fall
/// back to full per-block instrumentation (`full_fallback`).
pub fn plan_function(func: &Function) -> MeasurementPlan {
    let edges = flow_edges(func);
    let exit_node = func.blocks.len();
    let reach = cfg::reachable(func);
    let num_nodes = reach.iter().filter(|&&r| r).count() + 1;
    if !edges.iter().any(|e| matches!(e, FlowEdge::ToExit { .. })) {
        return MeasurementPlan {
            counters: Vec::new(),
            num_edges: edges.len(),
            num_nodes,
            full_fallback: true,
        };
    }
    let preds = reachable_predecessors(func);
    let loops = LoopInfo::compute(func);
    let dom = crate::dom::Dominators::compute(func);
    // Static frequency estimate: deeper loop nesting dominates, and at
    // equal depth a back edge (target dominates source) runs once per
    // iteration while the loop-entry edge runs once per entry — so back
    // edges get a tie-breaking bonus toward the tree.
    let weight = |e: &FlowEdge| match *e {
        FlowEdge::Cfg { from, to } => {
            2 * loops.depth(from).min(loops.depth(to)) + u32::from(dom.dominates(to, from))
        }
        FlowEdge::ToExit { .. } | FlowEdge::FromExit => 0,
    };

    // Kruskal over the undirected augmented graph. Edges that cannot host a
    // counter at all (an unhostable FromExit) are forced onto the tree
    // first; the rest join by descending weight, ties broken by enumeration
    // order for determinism.
    let mut order: Vec<usize> = (0..edges.len()).collect();
    order.sort_by_key(|&i| {
        let forced = counter_host(func, &preds, edges[i]).is_none();
        (!forced, std::cmp::Reverse(weight(&edges[i])), i)
    });
    let mut uf = UnionFind::new(func.blocks.len() + 1);
    let mut in_tree = vec![false; edges.len()];
    for &i in &order {
        let (u, v) = endpoints(edges[i], func, exit_node);
        if uf.union(u, v) {
            in_tree[i] = true;
        }
    }

    let mut counters = Vec::new();
    for (i, &edge) in edges.iter().enumerate() {
        if in_tree[i] {
            continue;
        }
        match counter_host(func, &preds, edge) {
            Some(host) => counters.push(CounterSite { edge, host }),
            // Only FromExit can be unhostable, and forced edges always make
            // the (initially empty) tree — but degrade safely if not.
            None => {
                return MeasurementPlan {
                    counters: Vec::new(),
                    num_edges: edges.len(),
                    num_nodes,
                    full_fallback: true,
                }
            }
        }
    }
    MeasurementPlan {
        counters,
        num_edges: edges.len(),
        num_nodes,
        full_fallback: false,
    }
}

/// Full flow recovered from sparse measurements.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RecoveredFlow {
    /// Execution count for every live block (unreachable live blocks get 0,
    /// matching what full instrumentation would have measured).
    pub block_counts: HashMap<BlockId, u64>,
    /// Traversal count for every real CFG edge, in `(from, to)` order.
    pub edge_counts: Vec<(BlockId, BlockId, u64)>,
    /// Function invocation count (the `FromExit` circulation value).
    pub entry_count: u64,
}

/// Solves the full circulation from measured co-tree edges by Kirchhoff
/// elimination: repeatedly pick a node with exactly one unknown incident
/// edge and solve it from flow conservation. Returns `None` if any edge
/// stays unknown — i.e. the measured set was not recoverable (the static
/// prover exists to rule this out before execution).
pub fn reconstruct(func: &Function, measured: &HashMap<FlowEdge, u64>) -> Option<RecoveredFlow> {
    let edges = flow_edges(func);
    let exit_node = func.blocks.len();
    let num_nodes = func.blocks.len() + 1;
    let mut value: Vec<Option<u64>> = edges.iter().map(|e| measured.get(e).copied()).collect();

    // Incidence lists. Self-loop CFG edges contribute equally to a node's
    // inflow and outflow, so conservation can never solve them — they are
    // excluded from the unknown bookkeeping and must be measured directly
    // (any self-loop is a cycle by itself, hence always co-tree).
    let mut incident: Vec<Vec<usize>> = vec![Vec::new(); num_nodes];
    let mut unknown_at = vec![0usize; num_nodes];
    for (i, &e) in edges.iter().enumerate() {
        let (u, v) = endpoints(e, func, exit_node);
        if u == v {
            value[i]?;
            continue;
        }
        incident[u].push(i);
        incident[v].push(i);
        if value[i].is_none() {
            unknown_at[u] += 1;
            unknown_at[v] += 1;
        }
    }

    let mut worklist: Vec<usize> = (0..num_nodes).filter(|&n| unknown_at[n] == 1).collect();
    while let Some(node) = worklist.pop() {
        if unknown_at[node] != 1 {
            continue; // solved transitively since being queued
        }
        let mut in_known: i128 = 0;
        let mut out_known: i128 = 0;
        let mut missing = None;
        for &i in &incident[node] {
            let (u, v) = endpoints(edges[i], func, exit_node);
            match value[i] {
                Some(c) => {
                    if v == node {
                        in_known += c as i128;
                    }
                    if u == node {
                        out_known += c as i128;
                    }
                }
                None => missing = Some((i, u == node)),
            }
        }
        let (i, outgoing) = missing?;
        let solved = if outgoing {
            in_known - out_known
        } else {
            out_known - in_known
        };
        // Exact counter data never goes negative; clamp defensively so a
        // corrupted input degrades rather than wrapping.
        value[i] = Some(solved.max(0) as u64);
        let (u, v) = endpoints(edges[i], func, exit_node);
        for n in [u, v] {
            unknown_at[n] -= 1;
            if unknown_at[n] == 1 {
                worklist.push(n);
            }
        }
    }
    if value.iter().any(|v| v.is_none()) {
        return None;
    }

    let mut out_total: HashMap<BlockId, u64> = HashMap::new();
    let mut edge_counts = Vec::new();
    let mut entry_count = 0;
    for (i, &e) in edges.iter().enumerate() {
        let c = value[i].unwrap();
        match e {
            FlowEdge::Cfg { from, to } => {
                *out_total.entry(from).or_insert(0) += c;
                edge_counts.push((from, to, c));
            }
            FlowEdge::ToExit { from } => {
                *out_total.entry(from).or_insert(0) += c;
            }
            FlowEdge::FromExit => entry_count = c,
        }
    }
    edge_counts.sort_by_key(|&(f, t, _)| (f, t));
    // Every execution of a block leaves it exactly once (returning blocks
    // through ToExit), so a block's count is the sum of its outgoing flow.
    // Live blocks outside the augmented graph (unreachable) measured 0.
    let block_counts = func
        .iter_blocks()
        .map(|(bid, _)| (bid, out_total.get(&bid).copied().unwrap_or(0)))
        .collect();
    Some(RecoveredFlow {
        block_counts,
        edge_counts,
        entry_count,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::ids::FuncId;
    use crate::inst::Operand;
    use crate::module::Module;

    /// diamond: entry -> (a|b) -> join -> ret
    fn diamond() -> Module {
        let mut mb = ModuleBuilder::new("m");
        let f = mb.declare_function("f", 0);
        {
            let mut fb = mb.function_builder(f);
            let entry = fb.entry_block();
            let a = fb.add_block();
            let b = fb.add_block();
            let join = fb.add_block();
            fb.switch_to(entry);
            fb.cond_br(Operand::Imm(1), a, b);
            fb.switch_to(a);
            fb.br(join);
            fb.switch_to(b);
            fb.br(join);
            fb.switch_to(join);
            fb.ret(Some(Operand::Imm(0)));
        }
        mb.finish()
    }

    /// loop: entry -> head; head -> (body | exit); body -> head; exit ret
    fn looped() -> Module {
        let mut mb = ModuleBuilder::new("m");
        let f = mb.declare_function("f", 0);
        {
            let mut fb = mb.function_builder(f);
            let entry = fb.entry_block();
            let head = fb.add_block();
            let body = fb.add_block();
            let exit = fb.add_block();
            fb.switch_to(entry);
            fb.br(head);
            fb.switch_to(head);
            fb.cond_br(Operand::Imm(1), body, exit);
            fb.switch_to(body);
            fb.br(head);
            fb.switch_to(exit);
            fb.ret(None);
        }
        mb.finish()
    }

    #[test]
    fn diamond_needs_one_counter() {
        let m = diamond();
        let f = &m.functions[0];
        let plan = plan_function(f);
        assert!(!plan.full_fallback);
        // 6 edges (4 cfg + ToExit + FromExit), 5 nodes incl. exit:
        // cyclomatic number 6 - 5 + 1 = 2, vs 4 full-mode counters.
        assert_eq!(plan.num_edges, 6);
        assert_eq!(plan.num_nodes, 5);
        assert_eq!(plan.counters.len(), 2);
    }

    #[test]
    fn loop_back_edge_stays_on_tree() {
        let m = looped();
        let f = &m.functions[0];
        let plan = plan_function(f);
        assert!(!plan.full_fallback);
        // 6 edges, 5 nodes (4 blocks + exit): two counters, and the hot
        // body->head back edge must not be one of them.
        assert_eq!(plan.counters.len(), 2);
        for site in &plan.counters {
            if let FlowEdge::Cfg { from, to } = site.edge {
                assert!(
                    !(from == BlockId(2) && to == BlockId(1)),
                    "back edge got a counter"
                );
            }
        }
    }

    #[test]
    fn no_exit_falls_back_to_full() {
        let mut mb = ModuleBuilder::new("m");
        let f = mb.declare_function("spin", 0);
        {
            let mut fb = mb.function_builder(f);
            let entry = fb.entry_block();
            fb.switch_to(entry);
            fb.br(entry);
        }
        let m = mb.finish();
        let plan = plan_function(&m.functions[0]);
        assert!(plan.full_fallback);
        assert!(plan.counters.is_empty());
    }

    #[test]
    fn reconstruct_diamond_from_one_counter() {
        let m = diamond();
        let f = &m.functions[0];
        let plan = plan_function(f);
        // Ground truth: 10 invocations, 7 through a, 3 through b.
        let truth: HashMap<FlowEdge, u64> = [
            (
                FlowEdge::Cfg {
                    from: BlockId(0),
                    to: BlockId(1),
                },
                7,
            ),
            (
                FlowEdge::Cfg {
                    from: BlockId(0),
                    to: BlockId(2),
                },
                3,
            ),
            (
                FlowEdge::Cfg {
                    from: BlockId(1),
                    to: BlockId(3),
                },
                7,
            ),
            (
                FlowEdge::Cfg {
                    from: BlockId(2),
                    to: BlockId(3),
                },
                3,
            ),
            (FlowEdge::ToExit { from: BlockId(3) }, 10),
            (FlowEdge::FromExit, 10),
        ]
        .into_iter()
        .collect();
        let measured: HashMap<FlowEdge, u64> = plan
            .counters
            .iter()
            .map(|s| (s.edge, truth[&s.edge]))
            .collect();
        let rec = reconstruct(f, &measured).expect("recoverable");
        assert_eq!(rec.entry_count, 10);
        assert_eq!(rec.block_counts[&BlockId(0)], 10);
        assert_eq!(rec.block_counts[&BlockId(1)], 7);
        assert_eq!(rec.block_counts[&BlockId(2)], 3);
        assert_eq!(rec.block_counts[&BlockId(3)], 10);
        for (from, to, c) in rec.edge_counts {
            assert_eq!(c, truth[&FlowEdge::Cfg { from, to }], "{from:?}->{to:?}");
        }
    }

    #[test]
    fn reconstruct_rejects_insufficient_measurements() {
        let m = diamond();
        let f = &m.functions[0];
        // Measuring nothing cannot recover a diamond.
        assert!(reconstruct(f, &HashMap::new()).is_none());
    }

    #[test]
    fn self_loop_must_be_measured() {
        let mut mb = ModuleBuilder::new("m");
        let fid = mb.declare_function("f", 0);
        {
            let mut fb = mb.function_builder(fid);
            let entry = fb.entry_block();
            let spin = fb.add_block();
            let done = fb.add_block();
            fb.switch_to(entry);
            fb.br(spin);
            fb.switch_to(spin);
            fb.cond_br(Operand::Imm(1), spin, done);
            fb.switch_to(done);
            fb.ret(None);
        }
        let m = mb.finish();
        let f = &m.functions[0];
        let plan = plan_function(f);
        assert!(!plan.full_fallback);
        let self_edge = FlowEdge::Cfg {
            from: BlockId(1),
            to: BlockId(1),
        };
        assert!(
            plan.counters.iter().any(|s| s.edge == self_edge),
            "self-loop must be in the co-tree: {:?}",
            plan.counters
        );
        // 4 invocations, 9 extra spins.
        let measured: HashMap<FlowEdge, u64> = plan
            .counters
            .iter()
            .map(|s| {
                let c = match s.edge {
                    e if e == self_edge => 9,
                    FlowEdge::Cfg { .. } => 4,
                    FlowEdge::ToExit { .. } | FlowEdge::FromExit => 4,
                };
                (s.edge, c)
            })
            .collect();
        let rec = reconstruct(f, &measured).expect("recoverable");
        assert_eq!(rec.block_counts[&BlockId(1)], 13);
        assert_eq!(rec.block_counts[&BlockId(2)], 4);
        assert_eq!(rec.entry_count, 4);
    }

    #[test]
    fn unreachable_live_blocks_count_zero() {
        let mut m = diamond();
        let f = &mut m.functions[0];
        let orphan = f.add_block();
        f.block_mut(orphan)
            .insts
            .push(crate::inst::Inst::synthetic(crate::inst::InstKind::Ret {
                value: None,
            }));
        let plan = plan_function(f);
        let measured: HashMap<FlowEdge, u64> = plan.counters.iter().map(|s| (s.edge, 0)).collect();
        let rec = reconstruct(f, &measured).expect("recoverable");
        assert_eq!(rec.block_counts[&orphan], 0);
        assert_eq!(rec.block_counts.len(), f.num_live_blocks());
    }

    #[test]
    fn hosting_rules() {
        let m = diamond();
        let f = &m.functions[0];
        let preds = reachable_predecessors(f);
        // entry -> a: a has a single pred, hosted in a.
        assert_eq!(
            counter_host(
                f,
                &preds,
                FlowEdge::Cfg {
                    from: BlockId(0),
                    to: BlockId(1)
                }
            ),
            Some(CounterHost::Block(BlockId(1)))
        );
        // a -> join: a has a single successor, hosted in a.
        assert_eq!(
            counter_host(
                f,
                &preds,
                FlowEdge::Cfg {
                    from: BlockId(1),
                    to: BlockId(3)
                }
            ),
            Some(CounterHost::Block(BlockId(1)))
        );
        // ToExit hosts in the returning block.
        assert_eq!(
            counter_host(f, &preds, FlowEdge::ToExit { from: BlockId(3) }),
            Some(CounterHost::Block(BlockId(3)))
        );
        // Entry has no real preds: FromExit hosts in the entry.
        assert_eq!(
            counter_host(f, &preds, FlowEdge::FromExit),
            Some(CounterHost::Block(BlockId(0)))
        );
        let _ = FuncId(0);
    }
}
