//! Natural-loop detection from back edges.

use crate::cfg;
use crate::dom::Dominators;
use crate::function::Function;
use crate::ids::BlockId;
use std::collections::HashSet;

/// One natural loop.
#[derive(Clone, Debug)]
pub struct Loop {
    /// The loop header (target of the back edge(s)).
    pub header: BlockId,
    /// Sources of back edges into the header.
    pub latches: Vec<BlockId>,
    /// All blocks in the loop, including the header.
    pub blocks: HashSet<BlockId>,
}

impl Loop {
    /// Whether `b` belongs to this loop.
    pub fn contains(&self, b: BlockId) -> bool {
        self.blocks.contains(&b)
    }

    /// Blocks outside the loop that loop blocks branch to.
    pub fn exits(&self, func: &Function) -> Vec<BlockId> {
        let mut out = Vec::new();
        for &b in &self.blocks {
            for s in cfg::successors(func, b) {
                if !self.contains(s) && !out.contains(&s) {
                    out.push(s);
                }
            }
        }
        out
    }
}

/// Loop forest for a function (loops sharing a header are merged).
#[derive(Clone, Debug)]
pub struct LoopInfo {
    /// All loops, innermost-last is *not* guaranteed; use
    /// [`LoopInfo::depth`] for nesting queries.
    pub loops: Vec<Loop>,
    depth: Vec<u32>,
}

impl LoopInfo {
    /// Detects natural loops in `func`.
    pub fn compute(func: &Function) -> Self {
        let dom = Dominators::compute(func);
        let preds = cfg::predecessors(func);
        let reachable = cfg::reachable(func);
        let mut loops: Vec<Loop> = Vec::new();

        for (bid, _) in func.iter_blocks() {
            for succ in cfg::successors(func, bid) {
                if dom.is_reachable(bid) && dom.dominates(succ, bid) {
                    // bid -> succ is a back edge; succ is a header.
                    let header = succ;
                    let body = collect_loop(header, bid, &preds, &reachable);
                    if let Some(l) = loops.iter_mut().find(|l| l.header == header) {
                        l.latches.push(bid);
                        l.blocks.extend(body);
                    } else {
                        loops.push(Loop {
                            header,
                            latches: vec![bid],
                            blocks: body,
                        });
                    }
                }
            }
        }

        let mut depth = vec![0u32; func.blocks.len()];
        for l in &loops {
            for &b in &l.blocks {
                depth[b.index()] += 1;
            }
        }
        LoopInfo { loops, depth }
    }

    /// Loop-nesting depth of `b` (0 = not in any loop).
    pub fn depth(&self, b: BlockId) -> u32 {
        self.depth[b.index()]
    }

    /// The innermost loop headed at `header`, if any.
    pub fn loop_at(&self, header: BlockId) -> Option<&Loop> {
        self.loops.iter().find(|l| l.header == header)
    }
}

/// Collects the natural loop of back edge `latch -> header`: header plus all
/// *reachable* blocks that reach `latch` without passing through `header`
/// (edges from unreachable blocks must not leak into the loop body).
fn collect_loop(
    header: BlockId,
    latch: BlockId,
    preds: &[Vec<BlockId>],
    reachable: &[bool],
) -> HashSet<BlockId> {
    let mut blocks: HashSet<BlockId> = HashSet::new();
    blocks.insert(header);
    let mut stack = vec![latch];
    while let Some(b) = stack.pop() {
        if !reachable[b.index()] {
            continue;
        }
        if blocks.insert(b) {
            for &p in &preds[b.index()] {
                stack.push(p);
            }
        }
    }
    blocks
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::ids::VReg;
    use crate::inst::{BinOp, CmpPred, Operand};
    use crate::module::Module;

    /// Nested loops:
    /// entry(0) -> outer header(1); 1 -> inner header(2) | exit(5);
    /// 2 -> body(3) | outer latch(4); 3 -> 2; 4 -> 1; 5: ret.
    fn nested() -> Module {
        let mut mb = ModuleBuilder::new("m");
        let f = mb.declare_function("f", 1);
        {
            let mut fb = mb.function_builder(f);
            let entry = fb.entry_block();
            let oh = fb.add_block();
            let ih = fb.add_block();
            let body = fb.add_block();
            let ol = fb.add_block();
            let exit = fb.add_block();
            fb.switch_to(entry);
            fb.br(oh);
            fb.switch_to(oh);
            let c = fb.cmp(CmpPred::Lt, Operand::Reg(VReg(0)), Operand::Imm(10));
            fb.cond_br(Operand::Reg(c), ih, exit);
            fb.switch_to(ih);
            let c2 = fb.cmp(CmpPred::Lt, Operand::Reg(VReg(0)), Operand::Imm(5));
            fb.cond_br(Operand::Reg(c2), body, ol);
            fb.switch_to(body);
            let _ = fb.bin(BinOp::Add, Operand::Reg(VReg(0)), Operand::Imm(1));
            fb.br(ih);
            fb.switch_to(ol);
            fb.br(oh);
            fb.switch_to(exit);
            fb.ret(None);
        }
        mb.finish()
    }

    #[test]
    fn detects_nested_loops() {
        let m = nested();
        let li = LoopInfo::compute(&m.functions[0]);
        assert_eq!(li.loops.len(), 2);
        let outer = li.loop_at(BlockId(1)).expect("outer loop");
        let inner = li.loop_at(BlockId(2)).expect("inner loop");
        assert!(outer.contains(BlockId(2)));
        assert!(outer.contains(BlockId(4)));
        assert!(!outer.contains(BlockId(5)));
        assert!(inner.contains(BlockId(3)));
        assert!(!inner.contains(BlockId(4)));
    }

    #[test]
    fn depth_reflects_nesting() {
        let m = nested();
        let li = LoopInfo::compute(&m.functions[0]);
        assert_eq!(li.depth(BlockId(0)), 0);
        assert_eq!(li.depth(BlockId(1)), 1);
        assert_eq!(li.depth(BlockId(2)), 2);
        assert_eq!(li.depth(BlockId(3)), 2);
        assert_eq!(li.depth(BlockId(4)), 1);
        assert_eq!(li.depth(BlockId(5)), 0);
    }

    #[test]
    fn exits_of_inner_loop() {
        let m = nested();
        let li = LoopInfo::compute(&m.functions[0]);
        let inner = li.loop_at(BlockId(2)).unwrap();
        assert_eq!(inner.exits(&m.functions[0]), vec![BlockId(4)]);
    }
}
