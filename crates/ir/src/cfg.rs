//! Control-flow-graph queries: successors, predecessors, orderings,
//! reachability.

use crate::function::Function;
use crate::ids::BlockId;

/// Successors of `bb` (deduplicated, preserving first-seen order).
pub fn successors(func: &Function, bb: BlockId) -> Vec<BlockId> {
    let mut out = func.block(bb).successors();
    let mut seen = Vec::new();
    out.retain(|b| {
        if seen.contains(b) {
            false
        } else {
            seen.push(*b);
            true
        }
    });
    out
}

/// Predecessor lists for every block, indexed by block id. A block appears
/// once per predecessor *block* (parallel edges deduplicated).
pub fn predecessors(func: &Function) -> Vec<Vec<BlockId>> {
    let mut preds = vec![Vec::new(); func.blocks.len()];
    for (bid, _) in func.iter_blocks() {
        for succ in successors(func, bid) {
            let list: &mut Vec<BlockId> = &mut preds[succ.index()];
            if !list.contains(&bid) {
                list.push(bid);
            }
        }
    }
    preds
}

/// Blocks reachable from the entry, as a dense bitmap.
pub fn reachable(func: &Function) -> Vec<bool> {
    let mut seen = vec![false; func.blocks.len()];
    let mut stack = vec![func.entry];
    seen[func.entry.index()] = true;
    while let Some(bb) = stack.pop() {
        for succ in successors(func, bb) {
            if !seen[succ.index()] {
                seen[succ.index()] = true;
                stack.push(succ);
            }
        }
    }
    seen
}

/// Reverse post-order starting at the entry (only reachable blocks).
pub fn reverse_post_order(func: &Function) -> Vec<BlockId> {
    let mut post = Vec::with_capacity(func.blocks.len());
    let mut state = vec![0u8; func.blocks.len()]; // 0=unseen 1=open 2=done
                                                  // Iterative DFS computing postorder.
    let mut stack: Vec<(BlockId, usize)> = vec![(func.entry, 0)];
    state[func.entry.index()] = 1;
    while let Some(&mut (bb, ref mut next)) = stack.last_mut() {
        let succs = successors(func, bb);
        if *next < succs.len() {
            let s = succs[*next];
            *next += 1;
            if state[s.index()] == 0 {
                state[s.index()] = 1;
                stack.push((s, 0));
            }
        } else {
            state[bb.index()] = 2;
            post.push(bb);
            stack.pop();
        }
    }
    post.reverse();
    post
}

/// Marks blocks unreachable from the entry as dead and strips references to
/// them are not needed (no live block can branch to an unreachable block by
/// definition). Returns how many blocks were newly marked dead.
pub fn remove_unreachable(func: &mut Function) -> usize {
    let live = reachable(func);
    let mut n = 0;
    for (i, block) in func.blocks.iter_mut().enumerate() {
        if !block.dead && !live[i] {
            block.dead = true;
            block.insts.clear();
            n += 1;
        }
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::inst::{CmpPred, Operand};
    use crate::module::Module;

    /// entry -> (a | b); a -> join; b -> join; join -> ret; plus one orphan.
    fn diamond_with_orphan() -> Module {
        let mut mb = ModuleBuilder::new("m");
        let f = mb.declare_function("f", 1);
        {
            let mut fb = mb.function_builder(f);
            let entry = fb.entry_block();
            let a = fb.add_block();
            let b = fb.add_block();
            let join = fb.add_block();
            let orphan = fb.add_block();
            fb.switch_to(entry);
            let c = fb.cmp(
                CmpPred::Eq,
                Operand::Reg(crate::ids::VReg(0)),
                Operand::Imm(0),
            );
            fb.cond_br(Operand::Reg(c), a, b);
            fb.switch_to(a);
            fb.br(join);
            fb.switch_to(b);
            fb.br(join);
            fb.switch_to(join);
            fb.ret(None);
            fb.switch_to(orphan);
            fb.ret(None);
        }
        mb.finish()
    }

    #[test]
    fn preds_and_succs() {
        let m = diamond_with_orphan();
        let f = &m.functions[0];
        assert_eq!(successors(f, BlockId(0)), vec![BlockId(1), BlockId(2)]);
        let preds = predecessors(f);
        assert_eq!(preds[3], vec![BlockId(1), BlockId(2)]);
        assert!(preds[0].is_empty());
    }

    #[test]
    fn rpo_starts_at_entry_and_covers_reachable() {
        let m = diamond_with_orphan();
        let f = &m.functions[0];
        let rpo = reverse_post_order(f);
        assert_eq!(rpo[0], BlockId(0));
        assert_eq!(rpo.len(), 4); // orphan excluded
                                  // join must come after both a and b.
        let pos = |b: BlockId| rpo.iter().position(|&x| x == b).unwrap();
        assert!(pos(BlockId(3)) > pos(BlockId(1)));
        assert!(pos(BlockId(3)) > pos(BlockId(2)));
    }

    #[test]
    fn remove_unreachable_kills_orphan() {
        let mut m = diamond_with_orphan();
        let f = &mut m.functions[0];
        assert_eq!(remove_unreachable(f), 1);
        assert!(f.block(BlockId(4)).dead);
        assert_eq!(remove_unreachable(f), 0); // idempotent
    }

    #[test]
    fn parallel_edges_deduplicated() {
        let mut mb = ModuleBuilder::new("m");
        let f = mb.declare_function("f", 0);
        {
            let mut fb = mb.function_builder(f);
            let entry = fb.entry_block();
            let t = fb.add_block();
            fb.switch_to(entry);
            fb.cond_br(Operand::Imm(1), t, t);
            fb.switch_to(t);
            fb.ret(None);
        }
        let m = mb.finish();
        let f = &m.functions[0];
        assert_eq!(successors(f, BlockId(0)), vec![BlockId(1)]);
        assert_eq!(predecessors(f)[1], vec![BlockId(0)]);
    }
}
