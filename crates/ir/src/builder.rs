//! Ergonomic IR construction.
//!
//! [`ModuleBuilder`] owns a module under construction; [`FunctionBuilder`]
//! appends instructions to one function, tracking a current block and a
//! current source line (so lowering from the frontend produces line-accurate
//! [`DebugLoc`]s).

use crate::debuginfo::DebugLoc;
use crate::function::Function;
use crate::ids::{BlockId, FuncId, GlobalId, VReg};
use crate::inst::{BinOp, CmpPred, Inst, InstKind, Operand};
use crate::module::Module;

/// Builds a [`Module`].
#[derive(Debug)]
pub struct ModuleBuilder {
    module: Module,
}

impl ModuleBuilder {
    /// Starts a new module.
    pub fn new(name: impl Into<String>) -> Self {
        ModuleBuilder {
            module: Module::new(name),
        }
    }

    /// Declares a function and returns its id. The body is filled in through
    /// [`ModuleBuilder::function_builder`].
    pub fn declare_function(&mut self, name: impl Into<String>, num_params: usize) -> FuncId {
        let id = FuncId::from_index(self.module.functions.len());
        self.module
            .functions
            .push(Function::new(id, name, num_params));
        id
    }

    /// Declares a global array.
    pub fn add_global(&mut self, name: impl Into<String>, size: usize, init: Vec<i64>) -> GlobalId {
        self.module.add_global(name, size, init)
    }

    /// Returns a builder appending to `func`'s body.
    pub fn function_builder(&mut self, func: FuncId) -> FunctionBuilder<'_> {
        FunctionBuilder {
            func: self.module.func_mut(func),
            current: None,
            line: 0,
        }
    }

    /// Read-only access to the module under construction.
    pub fn module(&self) -> &Module {
        &self.module
    }

    /// Mutable access to a declared function.
    pub fn func_mut(&mut self, func: FuncId) -> &mut Function {
        self.module.func_mut(func)
    }

    /// Finishes construction.
    pub fn finish(self) -> Module {
        self.module
    }
}

/// Appends instructions to one function.
#[derive(Debug)]
pub struct FunctionBuilder<'m> {
    func: &'m mut Function,
    current: Option<BlockId>,
    line: u32,
}

impl<'m> FunctionBuilder<'m> {
    /// The function's entry block.
    pub fn entry_block(&self) -> BlockId {
        self.func.entry
    }

    /// Adds a fresh block.
    pub fn add_block(&mut self) -> BlockId {
        self.func.add_block()
    }

    /// Makes `bb` the block subsequent instructions are appended to.
    pub fn switch_to(&mut self, bb: BlockId) {
        self.current = Some(bb);
    }

    /// The block currently being appended to.
    ///
    /// # Panics
    ///
    /// Panics if no block has been selected with [`switch_to`].
    ///
    /// [`switch_to`]: FunctionBuilder::switch_to
    pub fn current_block(&self) -> BlockId {
        self.current
            .expect("no current block; call switch_to first")
    }

    /// Sets the source line attached to subsequent instructions.
    pub fn set_line(&mut self, line: u32) {
        self.line = line;
    }

    /// Whether the current block already ends in a terminator.
    pub fn current_is_terminated(&self) -> bool {
        self.current
            .map(|bb| self.func.block(bb).terminator().is_some())
            .unwrap_or(false)
    }

    /// Consumes the builder, returning the underlying function borrow.
    pub fn into_function(self) -> &'m mut Function {
        self.func
    }

    /// Sets the function's header line (AutoFDO offsets are relative to it).
    pub fn set_start_line(&mut self, line: u32) {
        self.func.start_line = line;
    }

    /// Allocates a fresh virtual register.
    pub fn new_vreg(&mut self) -> VReg {
        self.func.new_vreg()
    }

    /// Appends `kind` at the current line.
    pub fn emit(&mut self, kind: InstKind) {
        let bb = self.current_block();
        let loc = if self.line == 0 {
            DebugLoc::none()
        } else {
            DebugLoc::line_in(self.line, self.func.id)
        };
        self.func.block_mut(bb).insts.push(Inst::new(kind, loc));
    }

    /// `dst = src`; returns `dst`.
    pub fn copy(&mut self, src: Operand) -> VReg {
        let dst = self.new_vreg();
        self.emit(InstKind::Copy { dst, src });
        dst
    }

    /// `dst = lhs <op> rhs`; returns `dst`.
    pub fn bin(&mut self, op: BinOp, lhs: Operand, rhs: Operand) -> VReg {
        let dst = self.new_vreg();
        self.emit(InstKind::Bin { op, dst, lhs, rhs });
        dst
    }

    /// `dst = lhs <pred> rhs`; returns `dst`.
    pub fn cmp(&mut self, pred: CmpPred, lhs: Operand, rhs: Operand) -> VReg {
        let dst = self.new_vreg();
        self.emit(InstKind::Cmp {
            pred,
            dst,
            lhs,
            rhs,
        });
        dst
    }

    /// `dst = global[index]`; returns `dst`.
    pub fn load(&mut self, global: GlobalId, index: Operand) -> VReg {
        let dst = self.new_vreg();
        self.emit(InstKind::Load { dst, global, index });
        dst
    }

    /// `global[index] = value`.
    pub fn store(&mut self, global: GlobalId, index: Operand, value: Operand) {
        self.emit(InstKind::Store {
            global,
            index,
            value,
        });
    }

    /// Calls `callee`, returning the register holding its result.
    pub fn call(&mut self, callee: FuncId, args: Vec<Operand>) -> VReg {
        let dst = self.new_vreg();
        self.emit(InstKind::Call {
            dst: Some(dst),
            callee,
            args,
        });
        dst
    }

    /// Calls `callee`, discarding any result.
    pub fn call_void(&mut self, callee: FuncId, args: Vec<Operand>) {
        self.emit(InstKind::Call {
            dst: None,
            callee,
            args,
        });
    }

    /// Returns `value` (or nothing).
    pub fn ret(&mut self, value: Option<Operand>) {
        self.emit(InstKind::Ret { value });
    }

    /// Unconditional branch.
    pub fn br(&mut self, target: BlockId) {
        self.emit(InstKind::Br { target });
    }

    /// Conditional branch.
    pub fn cond_br(&mut self, cond: Operand, then_bb: BlockId, else_bb: BlockId) {
        self.emit(InstKind::CondBr {
            cond,
            then_bb,
            else_bb,
        });
    }

    /// Multi-way dispatch.
    pub fn switch(&mut self, value: Operand, cases: Vec<(i64, BlockId)>, default: BlockId) {
        self.emit(InstKind::Switch {
            value,
            cases,
            default,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::verify_module;

    #[test]
    fn build_diamond() {
        let mut mb = ModuleBuilder::new("m");
        let f = mb.declare_function("f", 1);
        {
            let mut fb = mb.function_builder(f);
            let entry = fb.entry_block();
            let then_bb = fb.add_block();
            let else_bb = fb.add_block();
            let join = fb.add_block();

            fb.switch_to(entry);
            fb.set_line(1);
            let c = fb.cmp(CmpPred::Gt, Operand::Reg(VReg(0)), Operand::Imm(0));
            fb.cond_br(Operand::Reg(c), then_bb, else_bb);

            fb.switch_to(then_bb);
            fb.set_line(2);
            let a = fb.copy(Operand::Imm(1));
            fb.br(join);

            fb.switch_to(else_bb);
            fb.set_line(3);
            fb.emit(InstKind::Copy {
                dst: a,
                src: Operand::Imm(2),
            });
            fb.br(join);

            fb.switch_to(join);
            fb.set_line(4);
            fb.ret(Some(Operand::Reg(a)));
        }
        let m = mb.finish();
        assert_eq!(verify_module(&m), vec![]);
        let f = &m.functions[0];
        assert_eq!(f.num_live_blocks(), 4);
        // Debug lines recorded on every instruction.
        assert!(f
            .iter_blocks()
            .flat_map(|(_, b)| &b.insts)
            .all(|i| i.loc.line != 0));
    }

    #[test]
    #[should_panic(expected = "no current block")]
    fn emitting_without_block_panics() {
        let mut mb = ModuleBuilder::new("m");
        let f = mb.declare_function("f", 0);
        let mut fb = mb.function_builder(f);
        fb.ret(None);
    }
}
