//! Pseudo-probe invariant checks.
//!
//! The pseudo-probe design (paper §III.A) only yields trustworthy profiles if
//! every optimization pass preserves a handful of structural invariants:
//!
//! 1. **Identity** — a probe id `(owner, index, inline_stack)` appears at most
//!    once per function, *unless* its copies carry duplication `factor`s
//!    accounting for the cloning: each copy represents `1/factor` of the
//!    probe's weight, so the copies' weights must sum to at most 1. Cloning
//!    passes (`unroll`, `tail_dup`) multiply the factor of every copy they
//!    create; merges and DCE may drop copies (the sum only shrinks, the
//!    factors stay valid).
//! 2. **Index range** — probe indices are dense per owner: `1 ..
//!    next_probe_index`. Index 0 or an index past the owner's allocation
//!    watermark means the probe was corrupted or fabricated.
//! 3. **Inline-stack well-formedness** — every frame names a real function
//!    and a probe index inside that function's range, the outermost frame
//!    belongs to the function physically containing the probe, and depth is
//!    bounded (a cycle in replayed inlining would otherwise grow it without
//!    limit).
//! 4. **Discriminator hygiene** (fresh IR only) — within a block each source
//!    line carries one discriminator, and across blocks a line's
//!    discriminators grow monotonically in block order, exactly as the
//!    discriminator-assignment pass produces them. Later duplication passes
//!    legitimately break this (that is the paper's argument for probes), so
//!    [`check_discriminators`] is *not* part of [`check_module`].
//!
//! [`check_module`] (invariants 1–3) is safe to run after **every** opt pass;
//! the optimizer's inter-pass verifier does exactly that. The
//! `csspgo-analysis` crate wraps these checks as stable lints.

use crate::function::Function;
use crate::ids::{BlockId, FuncId};
use crate::inst::InstKind;
use crate::module::Module;
use crate::probe::{ProbeKind, ProbeSite};
use std::collections::HashMap;
use std::fmt;

/// Maximum tolerated probe inline-stack depth. Real inlining depth in this
/// repo is single digits; anything deeper indicates a replay cycle.
pub const MAX_INLINE_DEPTH: usize = 64;

/// Classification of a probe-invariant violation, used by the analysis layer
/// to map findings onto stable lint ids.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ProbeIssueKind {
    /// Multiple copies of one probe id with a unit duplication factor.
    DuplicateId,
    /// Multiple copies whose declared factors leave a combined weight
    /// (`Σ 1/factor`) above 1 — some cloning pass forgot to raise them.
    MissingDupFactor,
    /// Probe index 0, past the owner's allocation watermark, or unknown owner.
    IndexOutOfRange,
    /// Inline stack with an invalid frame, wrong root, or excessive depth.
    MalformedInlineStack,
    /// One source line with several discriminators inside a single block.
    DiscriminatorConflict,
    /// A line's discriminators do not grow monotonically across blocks.
    DiscriminatorNonMonotone,
}

impl fmt::Display for ProbeIssueKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ProbeIssueKind::DuplicateId => "duplicate-probe-id",
            ProbeIssueKind::MissingDupFactor => "missing-dup-factor",
            ProbeIssueKind::IndexOutOfRange => "probe-index-out-of-range",
            ProbeIssueKind::MalformedInlineStack => "malformed-inline-stack",
            ProbeIssueKind::DiscriminatorConflict => "discriminator-conflict",
            ProbeIssueKind::DiscriminatorNonMonotone => "discriminator-non-monotone",
        };
        f.write_str(s)
    }
}

/// One probe-invariant violation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ProbeIssue {
    /// Function the offending probe physically lives in.
    pub func: FuncId,
    /// Block of (the first copy of) the offending probe, when applicable.
    pub block: Option<BlockId>,
    /// Violation class.
    pub kind: ProbeIssueKind,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ProbeIssue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "probe invariant [{}] in {}", self.kind, self.func)?;
        if let Some(b) = self.block {
            write!(f, " at {b}")?;
        }
        write!(f, ": {}", self.message)
    }
}

/// Checks invariants 1–3 (identity, index range, inline stacks) on every
/// function. Safe after any pass; an empty vector means all probes are sound.
#[must_use = "an empty vector means probe invariants hold"]
pub fn check_module(module: &Module) -> Vec<ProbeIssue> {
    let mut issues = Vec::new();
    for func in &module.functions {
        check_function_into(module, func, &mut issues);
    }
    issues
}

/// Checks invariants 1–3 on a single function.
#[must_use = "an empty vector means probe invariants hold"]
pub fn check_function(module: &Module, func: &Function) -> Vec<ProbeIssue> {
    let mut issues = Vec::new();
    check_function_into(module, func, &mut issues);
    issues
}

type ProbeId = (FuncId, u32, Vec<ProbeSite>);

struct ProbeGroup {
    first_block: BlockId,
    copies: usize,
    min_factor: u32,
    /// Combined weight of the copies: `Σ 1/factor`. Must stay ≤ 1.
    weight: f64,
}

fn check_function_into(module: &Module, func: &Function, issues: &mut Vec<ProbeIssue>) {
    let mut groups: HashMap<ProbeId, ProbeGroup> = HashMap::new();
    let mut order: Vec<ProbeId> = Vec::new();

    for (bid, block) in func.iter_blocks() {
        for inst in &block.insts {
            let InstKind::PseudoProbe {
                owner,
                index,
                kind,
                inline_stack,
                factor,
            } = &inst.kind
            else {
                continue;
            };

            check_index(module, func, bid, *owner, *index, issues);
            check_stack(module, func, bid, *kind, inline_stack, issues);

            let w = 1.0 / (*factor).max(1) as f64;
            let key: ProbeId = (*owner, *index, inline_stack.clone());
            match groups.get_mut(&key) {
                Some(g) => {
                    g.copies += 1;
                    g.min_factor = g.min_factor.min(*factor);
                    g.weight += w;
                }
                None => {
                    groups.insert(
                        key.clone(),
                        ProbeGroup {
                            first_block: bid,
                            copies: 1,
                            min_factor: *factor,
                            weight: w,
                        },
                    );
                    order.push(key);
                }
            }
        }
    }

    for key in &order {
        let g = &groups[key];
        // A lone copy is always fine; multiple copies must declare factors
        // whose weights sum to at most 1 (rounding slack for deep
        // compositions of cloning passes).
        if g.copies <= 1 || g.weight <= 1.0 + 1e-9 {
            continue;
        }
        let (owner, index, _) = key;
        let kind = if g.min_factor <= 1 {
            ProbeIssueKind::DuplicateId
        } else {
            ProbeIssueKind::MissingDupFactor
        };
        issues.push(ProbeIssue {
            func: func.id,
            block: Some(g.first_block),
            kind,
            message: format!(
                "probe {owner}:{index} has {} copies with combined weight {:.3} (min factor {})",
                g.copies, g.weight, g.min_factor
            ),
        });
    }
}

fn check_index(
    module: &Module,
    func: &Function,
    bid: BlockId,
    owner: FuncId,
    index: u32,
    issues: &mut Vec<ProbeIssue>,
) {
    let push = |issues: &mut Vec<ProbeIssue>, message: String| {
        issues.push(ProbeIssue {
            func: func.id,
            block: Some(bid),
            kind: ProbeIssueKind::IndexOutOfRange,
            message,
        });
    };
    if owner.index() >= module.functions.len() {
        push(issues, format!("probe owned by unknown function {owner}"));
        return;
    }
    if index == 0 {
        push(
            issues,
            format!("probe {owner}:{index} has reserved index 0"),
        );
        return;
    }
    let owner_f = module.func(owner);
    // The watermark is only meaningful once probes were inserted (signalled
    // by the recorded CFG checksum).
    if owner_f.probe_checksum.is_some() && index >= owner_f.next_probe_index {
        push(
            issues,
            format!(
                "probe {owner}:{index} past owner watermark {}",
                owner_f.next_probe_index
            ),
        );
    }
}

fn check_stack(
    module: &Module,
    func: &Function,
    bid: BlockId,
    _kind: ProbeKind,
    stack: &[ProbeSite],
    issues: &mut Vec<ProbeIssue>,
) {
    let push = |issues: &mut Vec<ProbeIssue>, message: String| {
        issues.push(ProbeIssue {
            func: func.id,
            block: Some(bid),
            kind: ProbeIssueKind::MalformedInlineStack,
            message,
        });
    };
    if stack.is_empty() {
        return;
    }
    if stack.len() > MAX_INLINE_DEPTH {
        push(
            issues,
            format!(
                "inline stack depth {} exceeds {MAX_INLINE_DEPTH}",
                stack.len()
            ),
        );
        return;
    }
    // The outermost frame's call-site probe must belong to the function the
    // probe physically lives in — the inliner always roots cloned stacks at
    // a call-site probe of the (transitive) caller.
    let root = stack[0];
    if root.func != func.id {
        push(
            issues,
            format!(
                "inline stack rooted at {} but probe lives in {}",
                root.func, func.id
            ),
        );
    }
    for frame in stack {
        if frame.func.index() >= module.functions.len() {
            push(
                issues,
                format!("inline frame names unknown function {}", frame.func),
            );
            continue;
        }
        let ff = module.func(frame.func);
        if frame.probe_index == 0
            || (ff.probe_checksum.is_some() && frame.probe_index >= ff.next_probe_index)
        {
            push(
                issues,
                format!(
                    "inline frame {}#{} outside probe range of {}",
                    frame.func, frame.probe_index, ff.name
                ),
            );
        }
    }
}

/// Checks discriminator hygiene (invariant 4) on one function.
///
/// Only meaningful on **fresh** IR, right after discriminator assignment and
/// probe insertion: later duplication passes (unroll, tail duplication)
/// legitimately clone discriminators, and if-conversion legitimately mixes
/// them in a merged block. Do not run this between passes.
#[must_use = "an empty vector means discriminators are sound"]
pub fn check_discriminators(func: &Function) -> Vec<ProbeIssue> {
    let mut issues = Vec::new();
    // line -> last (block, discriminator) seen, in block order.
    let mut last: HashMap<u32, (BlockId, u32)> = HashMap::new();
    for (bid, block) in func.iter_blocks() {
        // line -> discriminator within this block.
        let mut local: HashMap<u32, u32> = HashMap::new();
        for inst in &block.insts {
            let line = inst.loc.line;
            if line == 0 {
                continue;
            }
            let disc = inst.loc.discriminator;
            match local.get(&line) {
                Some(&prev) if prev != disc => {
                    issues.push(ProbeIssue {
                        func: func.id,
                        block: Some(bid),
                        kind: ProbeIssueKind::DiscriminatorConflict,
                        message: format!(
                            "line {line} has discriminators {prev} and {disc} in one block"
                        ),
                    });
                }
                Some(_) => {}
                None => {
                    local.insert(line, disc);
                }
            }
        }
        for (&line, &disc) in &local {
            match last.get(&line) {
                Some(&(pb, pd)) if disc <= pd => {
                    issues.push(ProbeIssue {
                        func: func.id,
                        block: Some(bid),
                        kind: ProbeIssueKind::DiscriminatorNonMonotone,
                        message: format!(
                            "line {line} discriminator {disc} in {bid} not above {pd} in {pb}"
                        ),
                    });
                }
                _ => {
                    last.insert(line, (bid, disc));
                }
            }
        }
    }
    // HashMap iteration above is unordered within a block's line set; sort
    // for deterministic output.
    issues.sort_by(|a, b| (a.block, &a.message).cmp(&(b.block, &b.message)));
    issues
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::Inst;

    fn probed_module() -> Module {
        // Hand-build: f with two blocks, probes 1 and 2.
        let mut mb = crate::builder::ModuleBuilder::new("m");
        let f = mb.declare_function("f", 0);
        {
            let mut fb = mb.function_builder(f);
            let e = fb.entry_block();
            let b = fb.add_block();
            fb.switch_to(e);
            fb.br(b);
            fb.switch_to(b);
            fb.ret(None);
        }
        let mut m = mb.finish();
        let func = &mut m.functions[0];
        func.probe_checksum = Some(1);
        for bid in [BlockId(0), BlockId(1)] {
            let index = func.alloc_probe_index();
            func.block_mut(bid).insts.insert(
                0,
                Inst::synthetic(InstKind::PseudoProbe {
                    owner: f,
                    index,
                    kind: ProbeKind::Block,
                    inline_stack: Vec::new(),
                    factor: 1,
                }),
            );
        }
        m
    }

    fn clone_probe_into(m: &mut Module, from: BlockId, to: BlockId) {
        let probe = m.functions[0].block(from).insts[0].clone();
        m.functions[0].block_mut(to).insts.insert(0, probe);
    }

    #[test]
    fn clean_probes_pass() {
        let m = probed_module();
        assert_eq!(check_module(&m), vec![]);
    }

    #[test]
    fn duplicate_without_factor_flagged() {
        let mut m = probed_module();
        clone_probe_into(&mut m, BlockId(0), BlockId(1));
        let issues = check_module(&m);
        assert_eq!(issues.len(), 1, "{issues:?}");
        assert_eq!(issues[0].kind, ProbeIssueKind::DuplicateId);
    }

    #[test]
    fn duplicate_with_sufficient_factor_passes() {
        let mut m = probed_module();
        clone_probe_into(&mut m, BlockId(0), BlockId(1));
        for b in &mut m.functions[0].blocks {
            for i in &mut b.insts {
                if let InstKind::PseudoProbe { factor, .. } = &mut i.kind {
                    *factor = 2;
                }
            }
        }
        assert_eq!(check_module(&m), vec![]);
    }

    #[test]
    fn underdeclared_factor_flagged() {
        let mut m = probed_module();
        // Three copies of probe 1 declaring factor 2.
        clone_probe_into(&mut m, BlockId(0), BlockId(1));
        clone_probe_into(&mut m, BlockId(0), BlockId(1));
        for b in &mut m.functions[0].blocks {
            for i in &mut b.insts {
                if let InstKind::PseudoProbe {
                    index: 1, factor, ..
                } = &mut i.kind
                {
                    *factor = 2;
                }
            }
        }
        let issues = check_module(&m);
        assert_eq!(issues.len(), 1, "{issues:?}");
        assert_eq!(issues[0].kind, ProbeIssueKind::MissingDupFactor);
    }

    #[test]
    fn out_of_range_index_flagged() {
        let mut m = probed_module();
        if let InstKind::PseudoProbe { index, .. } =
            &mut m.functions[0].block_mut(BlockId(0)).insts[0].kind
        {
            *index = 99;
        }
        let issues = check_module(&m);
        assert!(issues
            .iter()
            .any(|i| i.kind == ProbeIssueKind::IndexOutOfRange));
    }

    #[test]
    fn bad_inline_stack_root_flagged() {
        let mut m = probed_module();
        let g = FuncId(5); // not f, and out of module range too
        if let InstKind::PseudoProbe { inline_stack, .. } =
            &mut m.functions[0].block_mut(BlockId(0)).insts[0].kind
        {
            inline_stack.push(ProbeSite {
                func: g,
                probe_index: 1,
            });
        }
        let issues = check_module(&m);
        assert!(issues
            .iter()
            .any(|i| i.kind == ProbeIssueKind::MalformedInlineStack));
    }

    #[test]
    fn discriminator_conflict_flagged() {
        let mut m = probed_module();
        let b = &mut m.functions[0].block_mut(BlockId(0)).insts;
        // Two insts on line 3 with different discriminators in one block.
        let mut i1 = Inst::synthetic(InstKind::Br { target: BlockId(1) });
        i1.loc.line = 3;
        i1.loc.discriminator = 0;
        let mut i2 = i1.clone();
        i2.loc.discriminator = 1;
        b.pop();
        b.push(i2);
        b.push(i1);
        let issues = check_discriminators(&m.functions[0]);
        assert!(issues
            .iter()
            .any(|i| i.kind == ProbeIssueKind::DiscriminatorConflict));
    }

    #[test]
    fn non_monotone_discriminators_flagged() {
        let mut m = probed_module();
        // Same line in both blocks, same discriminator: not strictly rising.
        for bid in [BlockId(0), BlockId(1)] {
            let term = m.functions[0].block_mut(bid).insts.last_mut().unwrap();
            term.loc.line = 7;
            term.loc.discriminator = 2;
        }
        let issues = check_discriminators(&m.functions[0]);
        assert!(issues
            .iter()
            .any(|i| i.kind == ProbeIssueKind::DiscriminatorNonMonotone));
    }
}
