//! Profile annotation and pre-inliner plans: the interface between profile
//! generation (`csspgo-core`) and the optimizer (`csspgo-opt`).

use crate::function::Function;
use crate::ids::BlockId;
use crate::probe::ProbeSite;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// Correlated block counts for one function, keyed by the block ids of the
/// *fresh* (pre-optimization) IR the profile was correlated onto.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct FuncAnnotation {
    /// Execution count per block.
    pub block_counts: HashMap<BlockId, u64>,
    /// Entry count (calls to the function).
    pub entry_count: u64,
    /// Whether the profile was rejected as stale (checksum mismatch).
    pub stale: bool,
}

impl FuncAnnotation {
    /// Total count across blocks (used as a hotness proxy).
    pub fn total(&self) -> u64 {
        self.block_counts.values().sum()
    }
}

/// A whole-program profile annotation, keyed by function GUID so it survives
/// `FuncId` renumbering between builds.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct ProfileAnnotation {
    /// Per-function annotations.
    pub funcs: HashMap<u64, FuncAnnotation>,
}

impl ProfileAnnotation {
    /// Creates an empty annotation.
    pub fn new() -> Self {
        Self::default()
    }

    /// The annotation for `guid`, if present and not stale.
    pub fn for_guid(&self, guid: u64) -> Option<&FuncAnnotation> {
        self.funcs.get(&guid).filter(|a| !a.stale)
    }

    /// Applies the annotation to `func`, setting block counts. Blocks with no
    /// correlated count get 0 (they were never sampled). Functions without an
    /// annotation are left unannotated (`count = None`), which downstream
    /// passes treat as "no profile" rather than "cold".
    pub fn apply(&self, func: &mut Function) {
        let Some(fa) = self.for_guid(func.guid) else {
            return;
        };
        func.entry_count = Some(fa.entry_count);
        let ids: Vec<BlockId> = func.iter_blocks().map(|(id, _)| id).collect();
        for bid in ids {
            let c = fa.block_counts.get(&bid).copied().unwrap_or(0);
            func.block_mut(bid).count = Some(c);
        }
    }
}

/// A pre-inliner decision set (paper §III.B, Algorithm 2): inline chains
/// expressed as paths of call-site probes from an outermost function.
///
/// The optimizer's top-down sample-loader inliner honours these decisions
/// when legal, which is how the paper works around ThinLTO's inability to
/// move profile across modules.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct InlinePlan {
    /// Each entry is a chain of call-site probes, outermost first; the chain
    /// `[(f, p1), (g, p2)]` means "inline the callee at probe `p1` of `f`
    /// (which is `g`) and then the callee at probe `p2` of that inlined `g`".
    pub paths: HashSet<Vec<ProbeSite>>,
}

impl InlinePlan {
    /// Creates an empty plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a decision to inline along `path`.
    pub fn add(&mut self, path: Vec<ProbeSite>) {
        debug_assert!(!path.is_empty());
        self.paths.insert(path);
    }

    /// Whether the call site reached via `path` should be inlined.
    pub fn should_inline(&self, path: &[ProbeSite]) -> bool {
        self.paths.contains(path)
    }

    /// Whether the plan has any decision extending `prefix` — used to prune
    /// top-down traversal.
    pub fn has_extension(&self, prefix: &[ProbeSite]) -> bool {
        self.paths
            .iter()
            .any(|p| p.len() > prefix.len() && p.starts_with(prefix))
    }

    /// Whether the plan is empty.
    pub fn is_empty(&self) -> bool {
        self.paths.is_empty()
    }

    /// Number of decisions.
    pub fn len(&self) -> usize {
        self.paths.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::ids::FuncId;
    use crate::inst::Operand;

    #[test]
    fn apply_sets_block_counts() {
        let mut mb = ModuleBuilder::new("m");
        let f = mb.declare_function("f", 0);
        {
            let mut fb = mb.function_builder(f);
            let e = fb.entry_block();
            let b = fb.add_block();
            fb.switch_to(e);
            fb.br(b);
            fb.switch_to(b);
            fb.ret(Some(Operand::Imm(0)));
        }
        let mut m = mb.finish();
        let guid = m.functions[0].guid;
        let mut annot = ProfileAnnotation::new();
        annot.funcs.insert(
            guid,
            FuncAnnotation {
                block_counts: HashMap::from([(BlockId(0), 100)]),
                entry_count: 100,
                stale: false,
            },
        );
        annot.apply(&mut m.functions[0]);
        assert_eq!(m.functions[0].block(BlockId(0)).count, Some(100));
        // Uncounted blocks become 0, not None.
        assert_eq!(m.functions[0].block(BlockId(1)).count, Some(0));
        assert_eq!(m.functions[0].entry_count, Some(100));
    }

    #[test]
    fn stale_annotation_is_not_applied() {
        let mut mb = ModuleBuilder::new("m");
        let f = mb.declare_function("f", 0);
        {
            let mut fb = mb.function_builder(f);
            let e = fb.entry_block();
            fb.switch_to(e);
            fb.ret(None);
        }
        let mut m = mb.finish();
        let guid = m.functions[0].guid;
        let mut annot = ProfileAnnotation::new();
        annot.funcs.insert(
            guid,
            FuncAnnotation {
                block_counts: HashMap::from([(BlockId(0), 5)]),
                entry_count: 5,
                stale: true,
            },
        );
        annot.apply(&mut m.functions[0]);
        assert_eq!(m.functions[0].block(BlockId(0)).count, None);
    }

    #[test]
    fn inline_plan_prefix_queries() {
        let mut plan = InlinePlan::new();
        let site = |f: u32, p: u32| ProbeSite {
            func: FuncId(f),
            probe_index: p,
        };
        plan.add(vec![site(0, 1)]);
        plan.add(vec![site(0, 1), site(1, 2)]);
        assert!(plan.should_inline(&[site(0, 1)]));
        assert!(plan.should_inline(&[site(0, 1), site(1, 2)]));
        assert!(!plan.should_inline(&[site(1, 2)]));
        assert!(plan.has_extension(&[site(0, 1)]));
        assert!(!plan.has_extension(&[site(0, 1), site(1, 2)]));
        assert_eq!(plan.len(), 2);
    }
}
