//! Modules and globals.

use crate::function::Function;
use crate::ids::{FuncId, GlobalId};
use serde::{Deserialize, Serialize};

/// A global array of 64-bit cells. Workload state lives here (locals are
/// virtual registers and cannot be address-taken).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Global {
    /// Source-level name.
    pub name: String,
    /// Number of cells.
    pub size: usize,
    /// Initial values; shorter than `size` means zero-filled tail.
    pub init: Vec<i64>,
}

/// A whole program: functions plus globals.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Module {
    /// Module name (used for diagnostics only).
    pub name: String,
    /// Functions, indexed by [`FuncId`].
    pub functions: Vec<Function>,
    /// Globals, indexed by [`GlobalId`].
    pub globals: Vec<Global>,
    /// Number of instrumentation counters allocated (instrumented builds).
    pub num_counters: u32,
}

impl Module {
    /// Creates an empty module.
    pub fn new(name: impl Into<String>) -> Self {
        Module {
            name: name.into(),
            functions: Vec::new(),
            globals: Vec::new(),
            num_counters: 0,
        }
    }

    /// Shared access to a function.
    pub fn func(&self, id: FuncId) -> &Function {
        &self.functions[id.index()]
    }

    /// Mutable access to a function.
    pub fn func_mut(&mut self, id: FuncId) -> &mut Function {
        &mut self.functions[id.index()]
    }

    /// Looks a function up by name.
    pub fn find_function(&self, name: &str) -> Option<FuncId> {
        self.functions.iter().find(|f| f.name == name).map(|f| f.id)
    }

    /// Looks a function up by GUID.
    pub fn find_function_by_guid(&self, guid: u64) -> Option<FuncId> {
        self.functions.iter().find(|f| f.guid == guid).map(|f| f.id)
    }

    /// Adds a global array, returning its id.
    pub fn add_global(&mut self, name: impl Into<String>, size: usize, init: Vec<i64>) -> GlobalId {
        let id = GlobalId::from_index(self.globals.len());
        self.globals.push(Global {
            name: name.into(),
            size,
            init,
        });
        id
    }

    /// Looks a global up by name.
    pub fn find_global(&self, name: &str) -> Option<GlobalId> {
        self.globals
            .iter()
            .position(|g| g.name == name)
            .map(GlobalId::from_index)
    }

    /// Allocates a fresh instrumentation counter.
    pub fn alloc_counter(&mut self) -> u32 {
        let c = self.num_counters;
        self.num_counters += 1;
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_by_name_and_guid() {
        let mut m = Module::new("m");
        let f = Function::new(FuncId(0), "alpha", 0);
        let guid = f.guid;
        m.functions.push(f);
        assert_eq!(m.find_function("alpha"), Some(FuncId(0)));
        assert_eq!(m.find_function("beta"), None);
        assert_eq!(m.find_function_by_guid(guid), Some(FuncId(0)));
    }

    #[test]
    fn globals_and_counters() {
        let mut m = Module::new("m");
        let g = m.add_global("table", 16, vec![1, 2, 3]);
        assert_eq!(m.find_global("table"), Some(g));
        assert_eq!(m.globals[g.index()].size, 16);
        assert_eq!(m.alloc_counter(), 0);
        assert_eq!(m.alloc_counter(), 1);
        assert_eq!(m.num_counters, 2);
    }
}
