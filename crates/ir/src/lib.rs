//! Compiler IR for the CSSPGO reproduction.
//!
//! The IR is a conventional control-flow-graph IR over virtual registers
//! (non-SSA, three-address style). Its distinguishing features — the ones the
//! paper's contribution hangs off — are:
//!
//! * every instruction carries a [`DebugLoc`] (line, discriminator, inline
//!   stack), the correlation anchor used by AutoFDO-style sampling PGO;
//! * a [`InstKind::PseudoProbe`] intrinsic, the paper's *pseudo-instrumentation*
//!   anchor: it survives optimization like an instruction but lowers to
//!   metadata rather than machine code;
//! * a [`InstKind::CounterIncr`] intrinsic modelling traditional
//!   instrumentation (lowers to real load/add/store machine code);
//! * per-function CFG checksums ([`probe::cfg_checksum`]) for the paper's
//!   source-drift detection;
//! * profile annotation types ([`annot`]) that carry correlated counts and
//!   pre-inliner decisions into the optimizer.
//!
//! # Example
//!
//! ```
//! use csspgo_ir::builder::ModuleBuilder;
//! use csspgo_ir::inst::Operand;
//!
//! let mut mb = ModuleBuilder::new("demo");
//! let f = mb.declare_function("main", 0);
//! {
//!     let mut fb = mb.function_builder(f);
//!     let entry = fb.entry_block();
//!     fb.switch_to(entry);
//!     fb.ret(Some(Operand::Imm(42)));
//! }
//! let module = mb.finish();
//! assert!(csspgo_ir::verify::verify_module(&module).is_empty());
//! ```

pub mod annot;
pub mod builder;
pub mod cfg;
pub mod debuginfo;
pub mod dom;
pub mod flow;
pub mod function;
pub mod ids;
pub mod inst;
pub mod loops;
pub mod module;
pub mod printer;
pub mod probe;
pub mod probe_verify;
pub mod verify;

pub use annot::{InlinePlan, ProfileAnnotation};
pub use debuginfo::{DebugLoc, InlineSite};
pub use function::{BasicBlock, EdgeCounts, Function, Provenance, ProvenanceMap};
pub use ids::{BlockId, FuncId, GlobalId, VReg};
pub use inst::{BinOp, CmpPred, Inst, InstKind, Operand};
pub use module::{Global, Module};
pub use probe::{ProbeConfig, ProbeKind, ProbeSite};
