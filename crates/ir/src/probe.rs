//! Pseudo-probe support types: probe kinds, inline-stack frames, CFG
//! checksums and the optimization-blocking configuration.
//!
//! Pseudo-instrumentation (paper §III.A) inserts one *block probe* into every
//! basic block and one *call probe* before every call site, early in the
//! pipeline, on stable IR. Probes behave like instructions during
//! optimization (so code *merge* across distinct probes is blocked and
//! duplicated probes can be *summed*) but lower to metadata, not machine
//! code.

use crate::function::Function;
use crate::ids::FuncId;
use crate::inst::InstKind;
use crate::module::Module;
use serde::{Deserialize, Serialize};
use std::fmt;

/// What a probe anchors.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum ProbeKind {
    /// Anchors a basic block: its count is the block's execution count.
    Block,
    /// Anchors a call site: attributes callee samples to this site.
    Call,
}

impl fmt::Display for ProbeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProbeKind::Block => f.write_str("block"),
            ProbeKind::Call => f.write_str("call"),
        }
    }
}

/// One frame of a probe inline stack: "inlined through call-site probe
/// `probe_index` of `func`". The probe-based analogue of
/// [`crate::debuginfo::InlineSite`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct ProbeSite {
    /// The (original) function containing the call-site probe.
    pub func: FuncId,
    /// The call-site probe's index within `func`.
    pub probe_index: u32,
}

impl fmt::Display for ProbeSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.func, self.probe_index)
    }
}

/// How strongly pseudo-probes block optimizations (paper §III.A: "a flexible
/// framework ... a desired balance between overhead and accuracy").
///
/// Code *merge* is always blocked — distinct probes must never merge, that is
/// the point of the mechanism. The remaining knobs trade run-time overhead
/// against profile accuracy; the paper's production tuning unblocks them all
/// ("we fine-tune a few critical optimizations, including if-convert, machine
/// sink and instruction scheduling, to be unblocked by pseudo-probe").
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct ProbeConfig {
    /// Probes block if-conversion of the guarded blocks.
    pub block_if_convert: bool,
    /// Probes block sinking/hoisting code motion (LICM).
    pub block_code_motion: bool,
    /// Probes block jump threading (a duplication transform).
    pub block_jump_threading: bool,
}

impl ProbeConfig {
    /// The paper's production tuning: near-zero overhead, probes block only
    /// code merge.
    pub fn low_overhead() -> Self {
        ProbeConfig {
            block_if_convert: false,
            block_code_motion: false,
            block_jump_threading: false,
        }
    }

    /// Maximum accuracy: probes behave like full instrumentation barriers.
    pub fn high_accuracy() -> Self {
        ProbeConfig {
            block_if_convert: true,
            block_code_motion: true,
            block_jump_threading: true,
        }
    }
}

impl Default for ProbeConfig {
    fn default() -> Self {
        ProbeConfig::low_overhead()
    }
}

/// The exact word stream [`cfg_checksum`] hashes: per live block, the block
/// id, a terminator tag (1 = ret, 2 = br, 3 = cond-br, 4 = switch, 0 =
/// other/incomplete) and the successor ids, followed by the live-block
/// count.
///
/// This is the single definition of "CFG shape" shared by the annotate-side
/// checksum and the stale-profile matcher ([`cfg_checksum`] is nothing but
/// an FNV fold of this stream), so the two can never diverge on what a
/// shape is.
pub fn cfg_shape_words(func: &Function) -> Vec<u64> {
    let mut words = Vec::new();
    let mut nblocks = 0u64;
    for (bid, block) in func.iter_blocks() {
        nblocks += 1;
        words.push(bid.0 as u64);
        if let Some(term) = block.terminator() {
            // The shape of the terminator and its targets.
            let tag = match &term.kind {
                InstKind::Ret { .. } => 1u64,
                InstKind::Br { .. } => 2,
                InstKind::CondBr { .. } => 3,
                InstKind::Switch { .. } => 4,
                _ => 0,
            };
            words.push(tag);
            for succ in term.kind.successors() {
                words.push(succ.0 as u64);
            }
        }
    }
    words.push(nblocks);
    words
}

/// Computes the function's CFG-shape checksum (paper §III.A): an FNV-1a
/// fold of [`cfg_shape_words`].
///
/// The checksum hashes the block structure — per-block successor lists and
/// instruction *counts per kind class* are deliberately excluded so that
/// source edits which do not alter the CFG (comments, renames, constant
/// tweaks) keep the checksum stable, while any CFG change (added branch,
/// removed loop) is detected as a profile/IR mismatch.
///
/// Must be computed at probe-insertion time, on early IR.
pub fn cfg_checksum(func: &Function) -> u64 {
    let mut h = Fnv64::new();
    for w in cfg_shape_words(func) {
        h.write_u64(w);
    }
    h.finish()
}

/// One pseudo-probe of a function, in program order, labeled with the
/// guarded call's callee GUID when it anchors a call site.
///
/// Anchor sequences are the static backbone of stale-profile matching
/// (LLVM's anchor-based matcher): call probes carry a *stable label* (the
/// callee's name GUID) that survives CFG drift, so two builds' anchor
/// sequences can be aligned without executing anything.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Anchor {
    /// The probe's index within its owner function.
    pub index: u32,
    /// Block or call probe.
    pub kind: ProbeKind,
    /// For call probes: the GUID of the called function, when the call is
    /// direct and resolvable. `None` for block probes.
    pub callee: Option<u64>,
}

/// Extracts the top-level anchor sequence of `fid`: every probe owned by
/// the function itself (inlined-in probes are skipped), in probe-index
/// order — which on fresh IR is program order, since
/// [`Function::alloc_probe_index`] hands indices out in insertion order.
///
/// A call probe's label is the GUID of the callee of the instruction it
/// guards (the instruction immediately after the probe).
pub fn anchor_sequence(module: &Module, fid: FuncId) -> Vec<Anchor> {
    let func = module.func(fid);
    let mut anchors = Vec::new();
    for (_, block) in func.iter_blocks() {
        for (i, inst) in block.insts.iter().enumerate() {
            let InstKind::PseudoProbe {
                owner,
                index,
                kind,
                inline_stack,
                ..
            } = &inst.kind
            else {
                continue;
            };
            if *owner != fid || !inline_stack.is_empty() {
                continue;
            }
            let callee = match kind {
                ProbeKind::Block => None,
                ProbeKind::Call => block.insts.get(i + 1).and_then(|next| match &next.kind {
                    InstKind::Call { callee, .. } => Some(module.func(*callee).guid),
                    _ => None,
                }),
            };
            anchors.push(Anchor {
                index: *index,
                kind: *kind,
                callee,
            });
        }
    }
    anchors.sort_by_key(|a| a.index);
    anchors
}

/// Stable function GUID: a hash of the (mangled) function name, used to match
/// profiles across builds the way LLVM's pseudo-probe descriptors use an MD5
/// of the function name.
pub fn function_guid(name: &str) -> u64 {
    let mut h = Fnv64::new();
    for b in name.as_bytes() {
        h.write_u8(*b);
    }
    h.finish()
}

/// Minimal FNV-1a hasher; we avoid `DefaultHasher` because its output is not
/// guaranteed stable across Rust releases, and checksums are persisted in
/// profiles.
struct Fnv64(u64);

impl Fnv64 {
    fn new() -> Self {
        Fnv64(0xcbf2_9ce4_8422_2325)
    }
    fn write_u8(&mut self, b: u8) {
        self.0 ^= b as u64;
        self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
    }
    fn write_u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.write_u8(b);
        }
    }
    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::inst::Operand;

    #[test]
    fn guid_is_stable_and_distinct() {
        assert_eq!(function_guid("foo"), function_guid("foo"));
        assert_ne!(function_guid("foo"), function_guid("bar"));
    }

    #[test]
    fn checksum_detects_cfg_change_but_not_content_change() {
        // f1: entry -> ret            f2: same CFG, different constant
        // f3: entry -> (b1|b2) -> ret (different CFG)
        let build = |branchy: bool, constant: i64| {
            let mut mb = ModuleBuilder::new("m");
            let f = mb.declare_function("f", 0);
            {
                let mut fb = mb.function_builder(f);
                let entry = fb.entry_block();
                fb.switch_to(entry);
                if branchy {
                    let t = fb.add_block();
                    let e = fb.add_block();
                    let c = fb.cmp(
                        crate::inst::CmpPred::Eq,
                        Operand::Imm(constant),
                        Operand::Imm(0),
                    );
                    fb.cond_br(Operand::Reg(c), t, e);
                    fb.switch_to(t);
                    fb.ret(Some(Operand::Imm(1)));
                    fb.switch_to(e);
                    fb.ret(Some(Operand::Imm(2)));
                } else {
                    fb.ret(Some(Operand::Imm(constant)));
                }
            }
            let m = mb.finish();
            cfg_checksum(&m.functions[0])
        };
        assert_eq!(build(false, 1), build(false, 99)); // content change: same checksum
        assert_ne!(build(false, 1), build(true, 1)); // CFG change: detected
    }

    #[test]
    fn anchor_sequence_labels_call_probes_and_orders_by_index() {
        // g() exists to be called; f carries a block probe, then a call
        // probe guarding `call g`, hand-inserted the way `opt::probes` does.
        let mut mb = ModuleBuilder::new("m");
        let g = mb.declare_function("g", 0);
        let f = mb.declare_function("f", 0);
        {
            let mut fb = mb.function_builder(g);
            let entry = fb.entry_block();
            fb.switch_to(entry);
            fb.ret(Some(Operand::Imm(0)));
        }
        {
            let mut fb = mb.function_builder(f);
            let entry = fb.entry_block();
            fb.switch_to(entry);
            fb.emit(InstKind::PseudoProbe {
                owner: f,
                index: 1,
                kind: ProbeKind::Block,
                inline_stack: Vec::new(),
                factor: 1,
            });
            fb.emit(InstKind::PseudoProbe {
                owner: f,
                index: 2,
                kind: ProbeKind::Call,
                inline_stack: Vec::new(),
                factor: 1,
            });
            let r = fb.call(g, Vec::new());
            fb.ret(Some(Operand::Reg(r)));
        }
        let m = mb.finish();
        let anchors = anchor_sequence(&m, f);
        assert_eq!(anchors.len(), 2);
        assert_eq!(anchors[0].index, 1);
        assert_eq!(anchors[0].kind, ProbeKind::Block);
        assert_eq!(anchors[0].callee, None);
        assert_eq!(anchors[1].index, 2);
        assert_eq!(anchors[1].kind, ProbeKind::Call);
        assert_eq!(anchors[1].callee, Some(function_guid("g")));
        // Probes inlined from elsewhere are not part of f's own sequence.
        assert!(anchor_sequence(&m, g).is_empty());
    }

    #[test]
    fn checksum_is_exactly_the_fnv_fold_of_the_shape_words() {
        // The matcher consumes `cfg_shape_words`, annotation consumes
        // `cfg_checksum`; this pins that the two can never diverge.
        let mut mb = ModuleBuilder::new("m");
        let f = mb.declare_function("f", 1);
        {
            let mut fb = mb.function_builder(f);
            let entry = fb.entry_block();
            fb.switch_to(entry);
            let t = fb.add_block();
            let e = fb.add_block();
            let c = fb.cmp(
                crate::inst::CmpPred::Gt,
                Operand::Reg(crate::ids::VReg(0)),
                Operand::Imm(0),
            );
            fb.cond_br(Operand::Reg(c), t, e);
            fb.switch_to(t);
            fb.ret(Some(Operand::Imm(1)));
            fb.switch_to(e);
            fb.ret(Some(Operand::Imm(2)));
        }
        let m = mb.finish();
        let func = &m.functions[0];
        let mut h = Fnv64::new();
        for w in cfg_shape_words(func) {
            h.write_u64(w);
        }
        assert_eq!(h.finish(), cfg_checksum(func));
        // Shape words are non-trivial and deterministic.
        assert!(!cfg_shape_words(func).is_empty());
        assert_eq!(cfg_shape_words(func), cfg_shape_words(func));
    }

    #[test]
    fn probe_config_presets() {
        let low = ProbeConfig::low_overhead();
        assert!(!low.block_if_convert && !low.block_code_motion);
        let high = ProbeConfig::high_accuracy();
        assert!(high.block_if_convert && high.block_code_motion && high.block_jump_threading);
        assert_eq!(ProbeConfig::default(), low);
    }
}
