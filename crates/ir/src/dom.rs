//! Dominator tree (Cooper–Harvey–Kennedy iterative algorithm).

use crate::cfg;
use crate::function::Function;
use crate::ids::BlockId;

/// Immediate-dominator table for one function.
#[derive(Clone, Debug)]
pub struct Dominators {
    /// `idom[b]` = immediate dominator of `b`; the entry's idom is itself.
    /// Unreachable blocks have `None`.
    idom: Vec<Option<BlockId>>,
    entry: BlockId,
}

impl Dominators {
    /// Computes dominators for `func`.
    pub fn compute(func: &Function) -> Self {
        let rpo = cfg::reverse_post_order(func);
        let mut rpo_num = vec![usize::MAX; func.blocks.len()];
        for (i, &b) in rpo.iter().enumerate() {
            rpo_num[b.index()] = i;
        }
        let preds = cfg::predecessors(func);
        let mut idom: Vec<Option<BlockId>> = vec![None; func.blocks.len()];
        idom[func.entry.index()] = Some(func.entry);

        let intersect = |idom: &[Option<BlockId>], mut a: BlockId, mut b: BlockId| -> BlockId {
            while a != b {
                while rpo_num[a.index()] > rpo_num[b.index()] {
                    a = idom[a.index()].expect("processed block has idom");
                }
                while rpo_num[b.index()] > rpo_num[a.index()] {
                    b = idom[b.index()].expect("processed block has idom");
                }
            }
            a
        };

        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                let mut new_idom: Option<BlockId> = None;
                for &p in &preds[b.index()] {
                    if idom[p.index()].is_none() {
                        continue; // unprocessed or unreachable
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, cur, p),
                    });
                }
                if new_idom.is_some() && idom[b.index()] != new_idom {
                    idom[b.index()] = new_idom;
                    changed = true;
                }
            }
        }
        Dominators {
            idom,
            entry: func.entry,
        }
    }

    /// The immediate dominator of `b` (`None` for the entry or unreachable
    /// blocks).
    pub fn idom(&self, b: BlockId) -> Option<BlockId> {
        if b == self.entry {
            None
        } else {
            self.idom[b.index()]
        }
    }

    /// Whether `a` dominates `b` (reflexive).
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        if self.idom[b.index()].is_none() {
            return false; // b unreachable: nothing dominates it
        }
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            if cur == self.entry {
                return false;
            }
            match self.idom[cur.index()] {
                Some(d) => cur = d,
                None => return false,
            }
        }
    }

    /// Whether `b` is reachable (has dominator information).
    pub fn is_reachable(&self, b: BlockId) -> bool {
        self.idom[b.index()].is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::ids::VReg;
    use crate::inst::{CmpPred, Operand};

    /// entry(0) -> a(1) | b(2); a,b -> join(3); join -> loop header(4);
    /// 4 -> body(5) | exit(6); body -> 4.
    fn build() -> crate::module::Module {
        let mut mb = ModuleBuilder::new("m");
        let f = mb.declare_function("f", 1);
        {
            let mut fb = mb.function_builder(f);
            let entry = fb.entry_block();
            let a = fb.add_block();
            let b = fb.add_block();
            let join = fb.add_block();
            let header = fb.add_block();
            let body = fb.add_block();
            let exit = fb.add_block();
            fb.switch_to(entry);
            let c = fb.cmp(CmpPred::Eq, Operand::Reg(VReg(0)), Operand::Imm(0));
            fb.cond_br(Operand::Reg(c), a, b);
            fb.switch_to(a);
            fb.br(join);
            fb.switch_to(b);
            fb.br(join);
            fb.switch_to(join);
            fb.br(header);
            fb.switch_to(header);
            let c2 = fb.cmp(CmpPred::Lt, Operand::Reg(VReg(0)), Operand::Imm(10));
            fb.cond_br(Operand::Reg(c2), body, exit);
            fb.switch_to(body);
            fb.br(header);
            fb.switch_to(exit);
            fb.ret(None);
        }
        mb.finish()
    }

    #[test]
    fn idoms_of_diamond_and_loop() {
        let m = build();
        let d = Dominators::compute(&m.functions[0]);
        assert_eq!(d.idom(BlockId(0)), None);
        assert_eq!(d.idom(BlockId(1)), Some(BlockId(0)));
        assert_eq!(d.idom(BlockId(2)), Some(BlockId(0)));
        assert_eq!(d.idom(BlockId(3)), Some(BlockId(0))); // join dominated by entry, not a/b
        assert_eq!(d.idom(BlockId(4)), Some(BlockId(3)));
        assert_eq!(d.idom(BlockId(5)), Some(BlockId(4)));
        assert_eq!(d.idom(BlockId(6)), Some(BlockId(4)));
    }

    #[test]
    fn dominates_is_reflexive_and_transitive() {
        let m = build();
        let d = Dominators::compute(&m.functions[0]);
        assert!(d.dominates(BlockId(3), BlockId(3)));
        assert!(d.dominates(BlockId(0), BlockId(5)));
        assert!(d.dominates(BlockId(4), BlockId(5)));
        assert!(!d.dominates(BlockId(1), BlockId(3)));
        assert!(!d.dominates(BlockId(5), BlockId(6)));
    }
}
