//! IR well-formedness checks, run after construction and between passes
//! (always in debug builds, opt-in in release via the optimizer's
//! `OptConfig::interpass_verify`).
//!
//! Unlike a fail-fast verifier, [`verify_module`] collects *every* finding
//! in deterministic order (functions by id, blocks by id, instructions by
//! position), so a single broken pass surfaces all of its damage at once —
//! the same design as LLVM's IR verifier, and the substrate the
//! `csspgo-analysis` diagnostics engine builds on.

use crate::function::Function;
use crate::ids::{BlockId, FuncId};
use crate::inst::{InstKind, Operand};
use crate::module::Module;
use std::error::Error;
use std::fmt;

/// A verifier failure: where and what.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VerifyError {
    /// Offending function.
    pub func: FuncId,
    /// Offending block, when applicable.
    pub block: Option<BlockId>,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "verify failed in {}", self.func)?;
        if let Some(b) = self.block {
            write!(f, " at {b}")?;
        }
        write!(f, ": {}", self.message)
    }
}

impl Error for VerifyError {}

/// Verifies every function in `module`, returning *all* findings.
///
/// An empty vector means the module is well-formed. Findings are ordered
/// deterministically: functions in id order, blocks in id order,
/// instructions in program order.
#[must_use = "an empty vector means the module verified clean"]
pub fn verify_module(module: &Module) -> Vec<VerifyError> {
    let mut errors = Vec::new();
    for func in &module.functions {
        verify_function_into(module, func, &mut errors);
    }
    errors
}

/// Verifies one function, returning all findings. Checked properties: a
/// live block without a terminator, a terminator mid-block, an edge to a
/// dead or out-of-range block, an out-of-range register or callee, a dead
/// entry block, and layout consistency.
#[must_use = "an empty vector means the function verified clean"]
pub fn verify_function(module: &Module, func: &Function) -> Vec<VerifyError> {
    let mut errors = Vec::new();
    verify_function_into(module, func, &mut errors);
    errors
}

fn verify_function_into(module: &Module, func: &Function, errors: &mut Vec<VerifyError>) {
    let err = |block: Option<BlockId>, message: String| VerifyError {
        func: func.id,
        block,
        message,
    };

    if func.entry.index() >= func.blocks.len() || func.block(func.entry).dead {
        errors.push(err(None, "entry block is dead or out of range".into()));
    }

    for (bid, block) in func.iter_blocks() {
        let Some(last) = block.insts.last() else {
            errors.push(err(Some(bid), "live block is empty".into()));
            continue;
        };
        if !last.is_terminator() {
            errors.push(err(Some(bid), "live block lacks a terminator".into()));
        }
        for (i, inst) in block.insts.iter().enumerate() {
            if inst.is_terminator() && i + 1 != block.insts.len() {
                errors.push(err(Some(bid), "terminator in the middle of a block".into()));
            }
            for op in inst.kind.uses() {
                if let Operand::Reg(r) = op {
                    if r.index() >= func.num_vregs() {
                        errors.push(err(Some(bid), format!("use of unallocated register {r}")));
                    }
                }
            }
            if let Some(d) = inst.kind.def() {
                if d.index() >= func.num_vregs() {
                    errors.push(err(Some(bid), format!("def of unallocated register {d}")));
                }
            }
            if let InstKind::Call { callee, .. } = &inst.kind {
                if callee.index() >= module.functions.len() {
                    errors.push(err(Some(bid), format!("call to unknown function {callee}")));
                }
            }
            if let InstKind::Load { global, .. } | InstKind::Store { global, .. } = &inst.kind {
                if global.index() >= module.globals.len() {
                    errors.push(err(Some(bid), format!("access to unknown global {global}")));
                }
            }
        }
        for succ in block.successors() {
            if succ.index() >= func.blocks.len() {
                errors.push(err(Some(bid), format!("edge to out-of-range block {succ}")));
            } else if func.block(succ).dead {
                errors.push(err(Some(bid), format!("edge to dead block {succ}")));
            }
        }
    }

    if let Some(layout) = &func.layout {
        if layout.hot.first() != Some(&func.entry) {
            errors.push(err(
                None,
                "layout does not start with the entry block".into(),
            ));
        }
        let placed: usize = layout.hot.len() + layout.cold.len();
        if placed != func.num_live_blocks() {
            errors.push(err(
                None,
                format!(
                    "layout places {placed} blocks but function has {} live blocks",
                    func.num_live_blocks()
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::ids::VReg;

    fn tiny() -> Module {
        let mut mb = ModuleBuilder::new("m");
        let f = mb.declare_function("f", 0);
        {
            let mut fb = mb.function_builder(f);
            let e = fb.entry_block();
            fb.switch_to(e);
            fb.ret(None);
        }
        mb.finish()
    }

    #[test]
    fn valid_module_passes() {
        assert_eq!(verify_module(&tiny()), vec![]);
    }

    #[test]
    fn missing_terminator_detected() {
        let mut m = tiny();
        m.functions[0].block_mut(BlockId(0)).insts.pop();
        m.functions[0]
            .block_mut(BlockId(0))
            .insts
            .push(crate::inst::Inst::synthetic(InstKind::Copy {
                dst: VReg(0),
                src: Operand::Imm(1),
            }));
        m.functions[0].reserve_vregs(1);
        let errs = verify_module(&m);
        assert_eq!(errs.len(), 1);
        assert!(errs[0].message.contains("terminator"), "{}", errs[0]);
    }

    #[test]
    fn unallocated_register_detected() {
        let mut m = tiny();
        m.functions[0].block_mut(BlockId(0)).insts.insert(
            0,
            crate::inst::Inst::synthetic(InstKind::Copy {
                dst: VReg(99),
                src: Operand::Imm(1),
            }),
        );
        let errs = verify_module(&m);
        assert!(errs.iter().any(|e| e.message.contains("unallocated")));
    }

    #[test]
    fn edge_to_dead_block_detected() {
        let mut m = tiny();
        let f = &mut m.functions[0];
        let b = f.add_block();
        f.block_mut(b).dead = true;
        f.block_mut(BlockId(0)).insts.pop();
        f.block_mut(BlockId(0))
            .insts
            .push(crate::inst::Inst::synthetic(InstKind::Br { target: b }));
        let errs = verify_module(&m);
        assert!(errs.iter().any(|e| e.message.contains("dead block")));
    }

    #[test]
    fn call_to_unknown_function_detected() {
        let mut m = tiny();
        m.functions[0].block_mut(BlockId(0)).insts.insert(
            0,
            crate::inst::Inst::synthetic(InstKind::Call {
                dst: None,
                callee: FuncId(42),
                args: vec![],
            }),
        );
        let errs = verify_module(&m);
        assert!(errs.iter().any(|e| e.message.contains("unknown function")));
    }

    #[test]
    fn all_findings_collected_not_just_the_first() {
        // Seed two independent corruptions in two functions: both must be
        // reported, in function order.
        let mut mb = ModuleBuilder::new("m");
        let f = mb.declare_function("f", 0);
        let g = mb.declare_function("g", 0);
        for id in [f, g] {
            let mut fb = mb.function_builder(id);
            let e = fb.entry_block();
            fb.switch_to(e);
            fb.ret(None);
        }
        let mut m = mb.finish();
        m.functions[0].block_mut(BlockId(0)).insts.insert(
            0,
            crate::inst::Inst::synthetic(InstKind::Copy {
                dst: VReg(7),
                src: Operand::Imm(1),
            }),
        );
        m.functions[1].block_mut(BlockId(0)).insts.insert(
            0,
            crate::inst::Inst::synthetic(InstKind::Call {
                dst: None,
                callee: FuncId(42),
                args: vec![],
            }),
        );
        let errs = verify_module(&m);
        assert_eq!(errs.len(), 2, "both corruptions reported: {errs:?}");
        assert_eq!(errs[0].func, f, "deterministic function order");
        assert_eq!(errs[1].func, g);
        assert!(errs[0].message.contains("unallocated"));
        assert!(errs[1].message.contains("unknown function"));
    }

    #[test]
    fn error_display_mentions_location() {
        let e = VerifyError {
            func: FuncId(1),
            block: Some(BlockId(2)),
            message: "boom".into(),
        };
        assert_eq!(e.to_string(), "verify failed in fn1 at bb2: boom");
    }
}
