//! IR well-formedness checks, run after construction and between passes in
//! debug builds.

use crate::function::Function;
use crate::ids::{BlockId, FuncId};
use crate::inst::{InstKind, Operand};
use crate::module::Module;
use std::error::Error;
use std::fmt;

/// A verifier failure: where and what.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VerifyError {
    /// Offending function.
    pub func: FuncId,
    /// Offending block, when applicable.
    pub block: Option<BlockId>,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "verify failed in {}", self.func)?;
        if let Some(b) = self.block {
            write!(f, " at {b}")?;
        }
        write!(f, ": {}", self.message)
    }
}

impl Error for VerifyError {}

/// Verifies every function in `module`.
///
/// # Errors
///
/// Returns the first [`VerifyError`] found: a live block without a
/// terminator, a terminator mid-block, an edge to a dead or out-of-range
/// block, an out-of-range register or callee, or a dead entry block.
pub fn verify_module(module: &Module) -> Result<(), VerifyError> {
    for func in &module.functions {
        verify_function(module, func)?;
    }
    Ok(())
}

/// Verifies one function. See [`verify_module`] for the checked properties.
///
/// # Errors
///
/// Returns the first violation found.
pub fn verify_function(module: &Module, func: &Function) -> Result<(), VerifyError> {
    let err = |block: Option<BlockId>, message: String| VerifyError {
        func: func.id,
        block,
        message,
    };

    if func.entry.index() >= func.blocks.len() || func.block(func.entry).dead {
        return Err(err(None, "entry block is dead or out of range".into()));
    }

    for (bid, block) in func.iter_blocks() {
        let Some(last) = block.insts.last() else {
            return Err(err(Some(bid), "live block is empty".into()));
        };
        if !last.is_terminator() {
            return Err(err(Some(bid), "live block lacks a terminator".into()));
        }
        for (i, inst) in block.insts.iter().enumerate() {
            if inst.is_terminator() && i + 1 != block.insts.len() {
                return Err(err(Some(bid), "terminator in the middle of a block".into()));
            }
            for op in inst.kind.uses() {
                if let Operand::Reg(r) = op {
                    if r.index() >= func.num_vregs() {
                        return Err(err(Some(bid), format!("use of unallocated register {r}")));
                    }
                }
            }
            if let Some(d) = inst.kind.def() {
                if d.index() >= func.num_vregs() {
                    return Err(err(Some(bid), format!("def of unallocated register {d}")));
                }
            }
            if let InstKind::Call { callee, .. } = &inst.kind {
                if callee.index() >= module.functions.len() {
                    return Err(err(Some(bid), format!("call to unknown function {callee}")));
                }
            }
            if let InstKind::Load { global, .. } | InstKind::Store { global, .. } = &inst.kind {
                if global.index() >= module.globals.len() {
                    return Err(err(Some(bid), format!("access to unknown global {global}")));
                }
            }
        }
        for succ in block.successors() {
            if succ.index() >= func.blocks.len() {
                return Err(err(Some(bid), format!("edge to out-of-range block {succ}")));
            }
            if func.block(succ).dead {
                return Err(err(Some(bid), format!("edge to dead block {succ}")));
            }
        }
    }

    if let Some(layout) = &func.layout {
        if layout.hot.first() != Some(&func.entry) {
            return Err(err(
                None,
                "layout does not start with the entry block".into(),
            ));
        }
        let placed: usize = layout.hot.len() + layout.cold.len();
        if placed != func.num_live_blocks() {
            return Err(err(
                None,
                format!(
                    "layout places {placed} blocks but function has {} live blocks",
                    func.num_live_blocks()
                ),
            ));
        }
    }

    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::ids::VReg;

    fn tiny() -> Module {
        let mut mb = ModuleBuilder::new("m");
        let f = mb.declare_function("f", 0);
        {
            let mut fb = mb.function_builder(f);
            let e = fb.entry_block();
            fb.switch_to(e);
            fb.ret(None);
        }
        mb.finish()
    }

    #[test]
    fn valid_module_passes() {
        assert!(verify_module(&tiny()).is_ok());
    }

    #[test]
    fn missing_terminator_detected() {
        let mut m = tiny();
        m.functions[0].block_mut(BlockId(0)).insts.pop();
        m.functions[0]
            .block_mut(BlockId(0))
            .insts
            .push(crate::inst::Inst::synthetic(InstKind::Copy {
                dst: VReg(0),
                src: Operand::Imm(1),
            }));
        m.functions[0].reserve_vregs(1);
        let e = verify_module(&m).unwrap_err();
        assert!(e.message.contains("terminator"), "{e}");
    }

    #[test]
    fn unallocated_register_detected() {
        let mut m = tiny();
        m.functions[0].block_mut(BlockId(0)).insts.insert(
            0,
            crate::inst::Inst::synthetic(InstKind::Copy {
                dst: VReg(99),
                src: Operand::Imm(1),
            }),
        );
        let e = verify_module(&m).unwrap_err();
        assert!(e.message.contains("unallocated"), "{e}");
    }

    #[test]
    fn edge_to_dead_block_detected() {
        let mut m = tiny();
        let f = &mut m.functions[0];
        let b = f.add_block();
        f.block_mut(b).dead = true;
        f.block_mut(BlockId(0)).insts.pop();
        f.block_mut(BlockId(0))
            .insts
            .push(crate::inst::Inst::synthetic(InstKind::Br { target: b }));
        let e = verify_module(&m).unwrap_err();
        assert!(e.message.contains("dead block"), "{e}");
    }

    #[test]
    fn call_to_unknown_function_detected() {
        let mut m = tiny();
        m.functions[0].block_mut(BlockId(0)).insts.insert(
            0,
            crate::inst::Inst::synthetic(InstKind::Call {
                dst: None,
                callee: FuncId(42),
                args: vec![],
            }),
        );
        let e = verify_module(&m).unwrap_err();
        assert!(e.message.contains("unknown function"), "{e}");
    }

    #[test]
    fn error_display_mentions_location() {
        let e = VerifyError {
            func: FuncId(1),
            block: Some(BlockId(2)),
            message: "boom".into(),
        };
        assert_eq!(e.to_string(), "verify failed in fn1 at bb2: boom");
    }
}
