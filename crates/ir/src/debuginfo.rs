//! Debug locations: the correlation anchor used by AutoFDO-style PGO.
//!
//! A [`DebugLoc`] records the *source line* an instruction came from, a
//! *discriminator* distinguishing duplicated copies of the same line (the
//! DWARF discriminator mechanism discussed in the paper §III.A), and the
//! *inline stack* describing the chain of call sites through which the
//! instruction was inlined.
//!
//! AutoFDO correlates binary samples back to `(line offset from function
//! start, discriminator)` pairs; the quality of that correlation — and how it
//! decays under optimization — is one of the central measurements of the
//! paper.

use crate::ids::FuncId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One frame of an inline stack: the call site (within `func`) through which
/// the instruction was inlined.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct InlineSite {
    /// The function containing the call site.
    pub func: FuncId,
    /// Source line of the call site (absolute, within the original source).
    pub line: u32,
    /// Discriminator of the call site.
    pub discriminator: u32,
}

impl fmt::Display for InlineSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}.{}", self.func, self.line, self.discriminator)
    }
}

/// A source location attached to an instruction.
///
/// `line == 0` means "no location" (compiler-synthesized code); AutoFDO-style
/// correlation simply cannot attribute samples landing on such instructions,
/// which is one of the decay mechanisms pseudo-instrumentation avoids.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct DebugLoc {
    /// Absolute source line, or 0 when unknown.
    pub line: u32,
    /// Discriminator distinguishing duplicated copies of one source line.
    pub discriminator: u32,
    /// The function whose source `line` belongs to (the *leaf* scope after
    /// inlining). [`FuncId::INVALID`] when unknown.
    pub scope: FuncId,
    /// Inline stack, outermost call site first. Empty when not inlined.
    pub inline_stack: Vec<InlineSite>,
}

impl Default for DebugLoc {
    fn default() -> Self {
        DebugLoc {
            line: 0,
            discriminator: 0,
            scope: FuncId::INVALID,
            inline_stack: Vec::new(),
        }
    }
}

impl DebugLoc {
    /// A location on `line` with no discriminator and no inline stack.
    pub fn line(line: u32) -> Self {
        DebugLoc {
            line,
            discriminator: 0,
            scope: FuncId::INVALID,
            inline_stack: Vec::new(),
        }
    }

    /// A location on `line` inside function `scope`.
    pub fn line_in(line: u32, scope: FuncId) -> Self {
        DebugLoc {
            line,
            discriminator: 0,
            scope,
            inline_stack: Vec::new(),
        }
    }

    /// The unknown location.
    pub fn none() -> Self {
        DebugLoc::default()
    }

    /// Whether this location carries no source information.
    pub fn is_none(&self) -> bool {
        self.line == 0 && self.inline_stack.is_empty()
    }

    /// Returns a copy with `site` pushed as the *outermost missing* frame,
    /// i.e. what inlining a callee into `site` does to each callee
    /// instruction: the callee's own frames stay innermost.
    pub fn inlined_at(&self, site: InlineSite) -> Self {
        let mut stack = Vec::with_capacity(self.inline_stack.len() + 1);
        stack.push(site);
        stack.extend(self.inline_stack.iter().copied());
        DebugLoc {
            line: self.line,
            discriminator: self.discriminator,
            scope: self.scope,
            inline_stack: stack,
        }
    }

    /// Returns a copy with the discriminator replaced.
    pub fn with_discriminator(&self, discriminator: u32) -> Self {
        DebugLoc {
            discriminator,
            ..self.clone()
        }
    }
}

impl fmt::Display for DebugLoc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_none() {
            return write!(f, "!none");
        }
        write!(f, "!{}", self.line)?;
        if self.discriminator != 0 {
            write!(f, ".{}", self.discriminator)?;
        }
        for site in &self.inline_stack {
            write!(f, " @{site}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_none() {
        assert!(DebugLoc::none().is_none());
        assert!(!DebugLoc::line(3).is_none());
    }

    #[test]
    fn inlined_at_prepends_site() {
        let inner = DebugLoc::line(10);
        let site_a = InlineSite {
            func: FuncId(1),
            line: 5,
            discriminator: 0,
        };
        let site_b = InlineSite {
            func: FuncId(2),
            line: 7,
            discriminator: 0,
        };
        // Inline f (line 10) into g at site_a, then g into h at site_b:
        // outermost frame must be site_b.
        let once = inner.inlined_at(site_a);
        let twice = once.inlined_at(site_b);
        assert_eq!(twice.inline_stack, vec![site_b, site_a]);
        assert_eq!(twice.line, 10);
    }

    #[test]
    fn display_forms() {
        assert_eq!(DebugLoc::none().to_string(), "!none");
        assert_eq!(DebugLoc::line(4).to_string(), "!4");
        assert_eq!(DebugLoc::line(4).with_discriminator(2).to_string(), "!4.2");
    }
}
