//! Textual IR dumps, for debugging and golden tests.

use crate::function::Function;
use crate::inst::InstKind;
use crate::module::Module;
use std::fmt;

impl fmt::Display for InstKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InstKind::Copy { dst, src } => write!(f, "{dst} = copy {src}"),
            InstKind::Bin { op, dst, lhs, rhs } => write!(f, "{dst} = {op} {lhs}, {rhs}"),
            InstKind::Cmp {
                pred,
                dst,
                lhs,
                rhs,
            } => write!(f, "{dst} = cmp.{pred} {lhs}, {rhs}"),
            InstKind::Select {
                dst,
                cond,
                on_true,
                on_false,
            } => write!(f, "{dst} = select {cond}, {on_true}, {on_false}"),
            InstKind::Load { dst, global, index } => write!(f, "{dst} = load {global}[{index}]"),
            InstKind::Store {
                global,
                index,
                value,
            } => {
                write!(f, "store {global}[{index}], {value}")
            }
            InstKind::Call { dst, callee, args } => {
                if let Some(d) = dst {
                    write!(f, "{d} = call {callee}(")?;
                } else {
                    write!(f, "call {callee}(")?;
                }
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            InstKind::Ret { value } => match value {
                Some(v) => write!(f, "ret {v}"),
                None => write!(f, "ret"),
            },
            InstKind::Br { target } => write!(f, "br {target}"),
            InstKind::CondBr {
                cond,
                then_bb,
                else_bb,
            } => write!(f, "condbr {cond}, {then_bb}, {else_bb}"),
            InstKind::Switch {
                value,
                cases,
                default,
            } => {
                write!(f, "switch {value} [")?;
                for (i, (v, b)) in cases.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v} -> {b}")?;
                }
                write!(f, "] default {default}")
            }
            InstKind::PseudoProbe {
                owner,
                index,
                kind,
                inline_stack,
                factor,
            } => {
                write!(f, "pseudo_probe {owner}:{index} {kind}")?;
                if *factor != 1 {
                    write!(f, " factor={factor}")?;
                }
                for s in inline_stack {
                    write!(f, " @{s}")?;
                }
                Ok(())
            }
            InstKind::CounterIncr { counter } => write!(f, "instrprof.increment #{counter}"),
        }
    }
}

impl fmt::Display for Function {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "func {} ({} params)", self.name, self.num_params)?;
        if let Some(c) = self.entry_count {
            write!(f, " entry_count={c}")?;
        }
        if let Some(cs) = self.probe_checksum {
            write!(f, " checksum={cs:#x}")?;
        }
        writeln!(f, " {{")?;
        for bid in self.linear_order() {
            let block = self.block(bid);
            write!(f, "{bid}:")?;
            if let Some(c) = block.count {
                write!(f, "  ; count {c}")?;
            }
            writeln!(f)?;
            for inst in &block.insts {
                write!(f, "    {}", inst.kind)?;
                if !inst.loc.is_none() {
                    write!(f, "  ; {}", inst.loc)?;
                }
                writeln!(f)?;
            }
        }
        writeln!(f, "}}")
    }
}

impl fmt::Display for Module {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "module {}", self.name)?;
        for g in &self.globals {
            writeln!(f, "global {}[{}]", g.name, g.size)?;
        }
        for func in &self.functions {
            writeln!(f)?;
            write!(f, "{func}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::ModuleBuilder;
    use crate::inst::{BinOp, Operand};

    #[test]
    fn module_dump_contains_structure() {
        let mut mb = ModuleBuilder::new("demo");
        mb.add_global("tab", 8, vec![]);
        let f = mb.declare_function("f", 1);
        {
            let mut fb = mb.function_builder(f);
            let e = fb.entry_block();
            fb.switch_to(e);
            fb.set_line(3);
            let v = fb.bin(
                BinOp::Add,
                Operand::Reg(crate::ids::VReg(0)),
                Operand::Imm(1),
            );
            fb.ret(Some(Operand::Reg(v)));
        }
        let text = mb.finish().to_string();
        assert!(text.contains("module demo"));
        assert!(text.contains("global tab[8]"));
        assert!(text.contains("func f (1 params)"));
        assert!(text.contains("%1 = add %0, 1  ; !3"));
        assert!(text.contains("ret %1"));
    }
}
