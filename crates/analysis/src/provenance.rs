//! Weight-provenance lints (`WP…`): judge the *pedigree* of annotated
//! counts, not their arithmetic. The annotation path tags every block
//! count with a [`Provenance`] — raw samples, stale-matcher transfer,
//! solver inference, or counter reconstruction — and these lints flag the
//! mixtures that make a profile quietly untrustworthy even when every
//! Kirchhoff check (`PF…`) passes.

use crate::diag::{find_lint, Lint, Policy, Report};
use csspgo_ir::loops::LoopInfo;
use csspgo_ir::{Function, Module, Provenance};

fn lint(id: &str) -> &'static Lint {
    find_lint(id).expect("registry covers every emitted lint")
}

/// Tuning knobs for the provenance lints.
#[derive(Clone, Copy, Debug)]
pub struct WpTolerance {
    /// A function is "hot" for `WP001` when it carries at least this share
    /// of the module's annotated weight.
    pub hot_share: f64,
    /// `WP001` fires when more than this share of a hot function's weight
    /// is solver-inferred.
    pub inferred_majority: f64,
    /// `WP003` fires when more than this share of the module's weight was
    /// transferred by the stale matcher.
    pub max_salvaged_share: f64,
    /// Weight floor below which functions/loops/modules are statistically
    /// meaningless and skipped.
    pub min_weight: u64,
}

impl Default for WpTolerance {
    fn default() -> Self {
        WpTolerance {
            hot_share: 0.10,
            inferred_majority: 0.50,
            max_salvaged_share: 0.50,
            min_weight: 64,
        }
    }
}

/// Per-tag weight totals for one function or module.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ProvenanceWeights {
    /// Weight under raw-sample (or exact-counter) counts.
    pub sampled: u64,
    /// Weight transferred by the stale matcher.
    pub stale_matched: u64,
    /// Weight invented or materially adjusted by inference.
    pub inferred: u64,
    /// Weight recovered from sparse counters by Kirchhoff elimination.
    pub reconstructed: u64,
}

impl ProvenanceWeights {
    /// Adds `weight` under `tag`.
    pub fn add(&mut self, tag: Provenance, weight: u64) {
        match tag {
            Provenance::Sampled => self.sampled += weight,
            Provenance::StaleMatched => self.stale_matched += weight,
            Provenance::Inferred => self.inferred += weight,
            Provenance::Reconstructed => self.reconstructed += weight,
        }
    }

    /// Total weight across all tags.
    pub fn total(&self) -> u64 {
        self.sampled + self.stale_matched + self.inferred + self.reconstructed
    }

    /// Folds another accumulation in.
    pub fn merge(&mut self, other: &ProvenanceWeights) {
        self.sampled += other.sampled;
        self.stale_matched += other.stale_matched;
        self.inferred += other.inferred;
        self.reconstructed += other.reconstructed;
    }
}

/// Sums one function's annotated weight by provenance tag. Blocks without
/// a tag (or functions annotated before provenance tracking) contribute
/// nothing.
pub fn function_weights(func: &Function) -> ProvenanceWeights {
    let mut w = ProvenanceWeights::default();
    let Some(tags) = &func.count_provenance else {
        return w;
    };
    for (bid, block) in func.iter_blocks() {
        let (Some(count), Some(tag)) = (block.count, tags.get(bid)) else {
            continue;
        };
        w.add(tag, count);
    }
    w
}

/// Sums a module's annotated weight by provenance tag.
pub fn module_weights(module: &Module) -> ProvenanceWeights {
    let mut w = ProvenanceWeights::default();
    for f in &module.functions {
        w.merge(&function_weights(f));
    }
    w
}

/// Runs the provenance lints over an annotated module:
///
/// * `WP001` — a hot function (≥ `hot_share` of module weight) whose
///   weight is majority solver-inferred;
/// * `WP002` — one loop whose blocks carry weight from several
///   *measurement* sources (`Sampled`/`StaleMatched`/`Reconstructed`;
///   `Inferred` is excluded — inference filling gaps between measured
///   blocks is normal and calibrated against them);
/// * `WP003` — stale-matched weight exceeding `max_salvaged_share` of the
///   module's total.
///
/// Returns the module-wide totals for report building.
pub fn analyze_provenance(
    policy: &Policy,
    unit: &str,
    module: &Module,
    tol: WpTolerance,
    report: &mut Report,
) -> ProvenanceWeights {
    let totals = module_weights(module);
    let module_total = totals.total();
    for func in &module.functions {
        let fw = function_weights(func);
        let ftotal = fw.total();
        if ftotal < tol.min_weight {
            continue;
        }
        // WP001: hot + majority-inferred.
        if module_total > 0
            && ftotal as f64 >= tol.hot_share * module_total as f64
            && fw.inferred as f64 > tol.inferred_majority * ftotal as f64
        {
            report.emit(
                policy,
                lint("WP001"),
                unit,
                Some(func.name.clone()),
                None,
                format!(
                    "{} of {} annotated weight is solver-inferred in a function carrying {:.0}% of module weight",
                    fw.inferred,
                    ftotal,
                    ftotal as f64 / module_total as f64 * 100.0
                ),
            );
        }
        // WP002: measurement-source mixing inside one loop.
        let Some(tags) = &func.count_provenance else {
            continue;
        };
        let loops = LoopInfo::compute(func);
        for lp in &loops.loops {
            let mut sources = Vec::new();
            let mut loop_weight = 0u64;
            for (bid, block) in func.iter_blocks() {
                if !lp.contains(bid) {
                    continue;
                }
                let (Some(count), Some(tag)) = (block.count, tags.get(bid)) else {
                    continue;
                };
                if count == 0 || tag == Provenance::Inferred {
                    continue;
                }
                loop_weight += count;
                if !sources.contains(&tag) {
                    sources.push(tag);
                }
            }
            if loop_weight >= tol.min_weight && sources.len() > 1 {
                let names: Vec<&str> = sources.iter().map(|t| t.tag()).collect();
                report.emit(
                    policy,
                    lint("WP002"),
                    unit,
                    Some(func.name.clone()),
                    Some(format!("loop at bb{}", lp.header.0)),
                    format!(
                        "loop mixes weight from {} measurement sources: {}",
                        sources.len(),
                        names.join(", ")
                    ),
                );
            }
        }
    }
    // WP003: module-wide salvage share.
    if module_total >= tol.min_weight
        && totals.stale_matched as f64 > tol.max_salvaged_share * module_total as f64
    {
        report.emit(
            policy,
            lint("WP003"),
            unit,
            None,
            None,
            format!(
                "{:.0}% of module weight ({} of {}) is stale-matcher salvage (max {:.0}%)",
                totals.stale_matched as f64 / module_total as f64 * 100.0,
                totals.stale_matched,
                module_total,
                tol.max_salvaged_share * 100.0
            ),
        );
    }
    totals
}

#[cfg(test)]
mod tests {
    use super::*;
    use csspgo_ir::ids::BlockId;
    use csspgo_ir::ProvenanceMap;

    fn annotated(src: &str, tag: Provenance, count: u64) -> Module {
        let mut m = csspgo_lang::compile(src, "t").unwrap();
        for f in &mut m.functions {
            let mut tags = Vec::new();
            let live: Vec<BlockId> = f.iter_blocks().map(|(b, _)| b).collect();
            for bid in live {
                f.block_mut(bid).count = Some(count);
                tags.push((bid, tag));
            }
            f.entry_count = Some(count);
            f.count_provenance = Some(ProvenanceMap::new(tags));
        }
        m
    }

    const LOOPY: &str = "fn f(n) { let i = 0; while (i < n) { i = i + 1; } return i; }";

    #[test]
    fn clean_sampled_module_has_no_findings() {
        let m = annotated(LOOPY, Provenance::Sampled, 1000);
        let mut report = Report::new();
        let totals = analyze_provenance(
            &Policy::deny_all(),
            "t",
            &m,
            WpTolerance::default(),
            &mut report,
        );
        assert!(report.diagnostics.is_empty(), "{}", report.render_human());
        assert_eq!(totals.sampled, totals.total());
    }

    #[test]
    fn hot_inferred_function_fires_wp001() {
        let m = annotated(LOOPY, Provenance::Inferred, 1000);
        let mut report = Report::new();
        analyze_provenance(
            &Policy::default(),
            "t",
            &m,
            WpTolerance::default(),
            &mut report,
        );
        assert!(!report.by_lint("WP001").is_empty());
    }

    #[test]
    fn loop_source_mixing_fires_wp002() {
        let mut m = annotated(LOOPY, Provenance::Sampled, 1000);
        // Retag one in-loop block as stale-matched.
        let f = &mut m.functions[0];
        let loops = LoopInfo::compute(f);
        let lp = &loops.loops[0];
        let in_loop: Vec<BlockId> = f
            .iter_blocks()
            .map(|(b, _)| b)
            .filter(|&b| lp.contains(b))
            .collect();
        assert!(in_loop.len() >= 2, "{in_loop:?}");
        let tags: Vec<(BlockId, Provenance)> = f
            .iter_blocks()
            .map(|(b, _)| {
                let tag = if b == in_loop[0] {
                    Provenance::StaleMatched
                } else {
                    Provenance::Sampled
                };
                (b, tag)
            })
            .collect();
        f.count_provenance = Some(ProvenanceMap::new(tags));
        let mut report = Report::new();
        analyze_provenance(
            &Policy::default(),
            "t",
            &m,
            WpTolerance::default(),
            &mut report,
        );
        assert!(
            !report.by_lint("WP002").is_empty(),
            "{}",
            report.render_human()
        );
    }

    #[test]
    fn inferred_gaps_do_not_fire_wp002() {
        let mut m = annotated(LOOPY, Provenance::Sampled, 1000);
        let f = &mut m.functions[0];
        let loops = LoopInfo::compute(f);
        let lp = &loops.loops[0];
        let in_loop: Vec<BlockId> = f
            .iter_blocks()
            .map(|(b, _)| b)
            .filter(|&b| lp.contains(b))
            .collect();
        let tags: Vec<(BlockId, Provenance)> = f
            .iter_blocks()
            .map(|(b, _)| {
                let tag = if b == in_loop[0] {
                    Provenance::Inferred
                } else {
                    Provenance::Sampled
                };
                (b, tag)
            })
            .collect();
        f.count_provenance = Some(ProvenanceMap::new(tags));
        let mut report = Report::new();
        analyze_provenance(
            &Policy::default(),
            "t",
            &m,
            WpTolerance::default(),
            &mut report,
        );
        assert!(
            report.by_lint("WP002").is_empty(),
            "{}",
            report.render_human()
        );
    }

    #[test]
    fn salvage_share_fires_wp003() {
        let m = annotated(LOOPY, Provenance::StaleMatched, 1000);
        let mut report = Report::new();
        analyze_provenance(
            &Policy::default(),
            "t",
            &m,
            WpTolerance::default(),
            &mut report,
        );
        assert!(!report.by_lint("WP003").is_empty());
        // A raised share tolerance silences it.
        let mut report2 = Report::new();
        analyze_provenance(
            &Policy::default(),
            "t",
            &m,
            WpTolerance {
                max_salvaged_share: 1.0,
                ..WpTolerance::default()
            },
            &mut report2,
        );
        assert!(report2.by_lint("WP003").is_empty());
    }

    #[test]
    fn untagged_modules_are_silent() {
        let m = csspgo_lang::compile(LOOPY, "t").unwrap();
        let mut report = Report::new();
        let totals = analyze_provenance(
            &Policy::deny_all(),
            "t",
            &m,
            WpTolerance::default(),
            &mut report,
        );
        assert_eq!(totals.total(), 0);
        assert!(report.diagnostics.is_empty());
    }
}
