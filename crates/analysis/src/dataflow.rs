//! Reusable dataflow layer: a generic worklist engine, CFG edge
//! classification built on `ir::dom`/`ir::loops`, and the static
//! recoverability *prover* for sparse counter placements (`PP…` lints).
//!
//! The prover is the symbolic twin of the numeric solver in
//! [`csspgo_ir::flow::reconstruct`]: instead of computing edge counts it
//! computes *which* edges Kirchhoff elimination can determine, before any
//! execution happens. A placement is certified when every augmented-graph
//! edge ends up known, every counter's claimed host really witnesses its
//! edge, no counter is information-free, and the function's invocation
//! count (`exit → entry`) is among the recovered values.

use crate::diag::{find_lint, Lint, Policy, Report};
use csspgo_ir::dom::Dominators;
use csspgo_ir::flow::{self, CounterHost, FlowEdge, MeasurementPlan, UnionFind};
use csspgo_ir::ids::BlockId;
use csspgo_ir::loops::LoopInfo;
use csspgo_ir::{cfg, Function, Module};
use std::collections::HashSet;

fn lint(id: &str) -> &'static Lint {
    find_lint(id).expect("registry covers every emitted lint")
}

/// A generic monotone worklist engine over `n` nodes: pops a dirty node,
/// runs `step` on it, and re-queues whatever `step` invalidates, until a
/// fixpoint. Nodes are queued at most once at a time.
pub fn worklist_fixpoint(
    n: usize,
    seeds: impl IntoIterator<Item = usize>,
    mut step: impl FnMut(usize, &mut Vec<usize>),
) {
    let mut queued = vec![false; n];
    let mut queue: Vec<usize> = Vec::new();
    for s in seeds {
        if !queued[s] {
            queued[s] = true;
            queue.push(s);
        }
    }
    let mut dirty = Vec::new();
    while let Some(node) = queue.pop() {
        queued[node] = false;
        dirty.clear();
        step(node, &mut dirty);
        for &d in &dirty {
            if !queued[d] {
                queued[d] = true;
                queue.push(d);
            }
        }
    }
}

/// Structural classification of one real CFG edge.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CfgEdgeKind {
    /// Target dominates source: a loop back edge (for reducible flow).
    pub back: bool,
    /// Source has several successors and target several predecessors: the
    /// edge cannot host a counter without being split.
    pub critical: bool,
    /// The edge leaves a loop (source strictly deeper than target).
    pub loop_exit: bool,
}

/// Classifies every real CFG edge of `func` using dominators and loop
/// nesting. Deterministic order (reverse post-order of sources).
pub fn classify_cfg_edges(func: &Function) -> Vec<(BlockId, BlockId, CfgEdgeKind)> {
    let dom = Dominators::compute(func);
    let loops = LoopInfo::compute(func);
    let preds = flow::reachable_predecessors(func);
    let mut out = Vec::new();
    for from in cfg::reverse_post_order(func) {
        let succs = cfg::successors(func, from);
        for &to in &succs {
            out.push((
                from,
                to,
                CfgEdgeKind {
                    back: dom.dominates(to, from),
                    critical: succs.len() > 1 && preds[to.index()].len() > 1,
                    loop_exit: loops.depth(from) > loops.depth(to),
                },
            ));
        }
    }
    out
}

/// What the prover concluded about one placement.
#[derive(Clone, Debug, Default)]
pub struct FlowProof {
    /// Number of directly measured edges.
    pub counted: usize,
    /// Number of edges Kirchhoff elimination derives from the counters.
    pub derived: usize,
    /// Edges whose counts stay unknown (`PP001`).
    pub unrecoverable: Vec<FlowEdge>,
    /// Counted edges already determined by the others (`PP002`).
    pub redundant: Vec<FlowEdge>,
    /// Counted edges whose claimed block host does not uniquely witness
    /// them (`PP003`).
    pub bad_host: Vec<FlowEdge>,
    /// Whether the invocation count (`exit → entry`) is measured or
    /// derived (`PP004` when false).
    pub entry_derivable: bool,
}

impl FlowProof {
    /// Whether the placement is fully certified.
    pub fn certified(&self) -> bool {
        self.unrecoverable.is_empty()
            && self.redundant.is_empty()
            && self.bad_host.is_empty()
            && self.entry_derivable
    }
}

/// Symbolically proves (or refutes) that `plan` recovers the full flow of
/// `func` — the static half of the Ball–Larus contract. Runs entirely on
/// the CFG: no profile, no execution.
pub fn prove_plan(func: &Function, plan: &MeasurementPlan) -> FlowProof {
    let edges = flow::flow_edges(func);
    let exit_node = func.blocks.len();
    let num_nodes = func.blocks.len() + 1;
    let preds = flow::reachable_predecessors(func);
    let measured: HashSet<FlowEdge> = plan.counters.iter().map(|s| s.edge).collect();

    let mut proof = FlowProof {
        counted: measured.len(),
        ..FlowProof::default()
    };

    // PP003: every block-hosted counter must name the block the hosting
    // rules would pick; anything else reads unrelated executions into the
    // edge count. `Split` hosts are materialized by the instrumentation
    // pass and always witness exactly their edge.
    for site in &plan.counters {
        if let CounterHost::Block(claimed) = site.host {
            match flow::counter_host(func, &preds, site.edge) {
                Some(CounterHost::Block(expected)) if expected == claimed => {}
                _ => proof.bad_host.push(site.edge),
            }
        }
    }

    // Symbolic Kirchhoff closure: a node with exactly one unknown incident
    // edge determines it. Self-loops cancel at their node and are only
    // known if measured directly.
    let mut known: Vec<bool> = edges.iter().map(|e| measured.contains(e)).collect();
    let mut incident: Vec<Vec<usize>> = vec![Vec::new(); num_nodes];
    let mut unknown_at = vec![0usize; num_nodes];
    for (i, &e) in edges.iter().enumerate() {
        let (u, v) = flow::endpoints(e, func, exit_node);
        if u == v {
            continue;
        }
        incident[u].push(i);
        incident[v].push(i);
        if !known[i] {
            unknown_at[u] += 1;
            unknown_at[v] += 1;
        }
    }
    let seeds: Vec<usize> = (0..num_nodes).filter(|&n| unknown_at[n] == 1).collect();
    worklist_fixpoint(num_nodes, seeds, |node, dirty| {
        if unknown_at[node] != 1 {
            return;
        }
        let Some(&i) = incident[node].iter().find(|&&i| !known[i]) else {
            return;
        };
        known[i] = true;
        proof.derived += 1;
        let (u, v) = flow::endpoints(edges[i], func, exit_node);
        for n in [u, v] {
            unknown_at[n] -= 1;
            if unknown_at[n] == 1 {
                dirty.push(n);
            }
        }
    });
    for (i, &e) in edges.iter().enumerate() {
        if !known[i] {
            proof.unrecoverable.push(e);
        }
    }

    // PP002 via the forest characterization: elimination recovers exactly
    // the placements whose unmeasured edges form an undirected forest, and
    // a measured edge is information-free iff adding it to that forest
    // still leaves a forest (its endpoints lie in different components).
    let mut uf = UnionFind::new(num_nodes);
    for (i, &e) in edges.iter().enumerate() {
        if !measured.contains(&edges[i]) {
            let (u, v) = flow::endpoints(e, func, exit_node);
            uf.union(u, v);
        }
    }
    for &e in &measured {
        let (u, v) = flow::endpoints(e, func, exit_node);
        if u != v && uf.find(u) != uf.find(v) {
            proof.redundant.push(e);
        }
    }
    proof.redundant.sort();
    proof.unrecoverable.sort();
    proof.bad_host.sort();

    // PP004: the invocation count must be measured at a valid host or
    // derived by the closure.
    let from_exit = edges.iter().position(|e| matches!(e, FlowEdge::FromExit));
    proof.entry_derivable = match from_exit {
        Some(i) => known[i] && !proof.bad_host.contains(&FlowEdge::FromExit),
        // No reachable exit: the circulation never closes; plans for such
        // functions fall back to full per-block counting, where the entry
        // block's counter is the invocation count.
        None => plan.full_fallback,
    };
    proof
}

/// Plans and proves a placement for every nontrivial function of `module`,
/// emitting `PP001`–`PP004`. Functions that fall back to full per-block
/// instrumentation (no reachable exit) are trivially recoverable and are
/// skipped. Returns the number of functions proven.
pub fn analyze_placement(
    policy: &Policy,
    unit: &str,
    module: &Module,
    report: &mut Report,
) -> usize {
    let mut proven = 0usize;
    for func in &module.functions {
        let plan = flow::plan_function(func);
        if plan.full_fallback {
            continue;
        }
        let proof = prove_plan(func, &plan);
        emit_proof(policy, unit, &func.name, &proof, report);
        proven += 1;
    }
    proven
}

/// Emits the `PP…` lints for one proof (exposed so callers proving
/// hand-built plans get identical reporting).
pub fn emit_proof(policy: &Policy, unit: &str, func: &str, proof: &FlowProof, report: &mut Report) {
    for e in &proof.unrecoverable {
        report.emit(
            policy,
            lint("PP001"),
            unit,
            Some(func.to_string()),
            Some(e.to_string()),
            format!(
                "edge `{e}` is not determined by the {} planned counters",
                proof.counted
            ),
        );
    }
    for e in &proof.redundant {
        report.emit(
            policy,
            lint("PP002"),
            unit,
            Some(func.to_string()),
            Some(e.to_string()),
            format!("counter on `{e}` is derivable from the other counters"),
        );
    }
    for e in &proof.bad_host {
        report.emit(
            policy,
            lint("PP003"),
            unit,
            Some(func.to_string()),
            Some(e.to_string()),
            format!("claimed host block does not uniquely witness `{e}` (critical edge needs a split block)"),
        );
    }
    if !proof.entry_derivable {
        report.emit(
            policy,
            lint("PP004"),
            unit,
            Some(func.to_string()),
            None,
            "function invocation count (exit -> entry) is neither measured nor derivable"
                .to_string(),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csspgo_ir::flow::CounterSite;

    fn compile(src: &str) -> Module {
        csspgo_lang::compile(src, "t").unwrap()
    }

    #[test]
    fn planned_placements_prove_clean() {
        let m = compile(
            "fn f(n) { let i = 0; let s = 0; while (i < n) { if (s > 10) { s = s - 1; } i = i + 1; s = s + i; } return s; } fn g(x) { if (x > 0) { return f(x); } return 0; }",
        );
        let mut report = Report::new();
        let proven = analyze_placement(&Policy::deny_all(), "t", &m, &mut report);
        assert!(proven >= 2);
        assert!(report.diagnostics.is_empty(), "{}", report.render_human());
    }

    #[test]
    fn empty_placement_is_unrecoverable() {
        let m = compile("fn f(x) { if (x > 0) { return 1; } return 2; }");
        let f = &m.functions[0];
        let plan = MeasurementPlan {
            counters: vec![],
            num_edges: flow::flow_edges(f).len(),
            num_nodes: 0,
            full_fallback: false,
        };
        let proof = prove_plan(f, &plan);
        assert!(!proof.certified());
        assert!(!proof.unrecoverable.is_empty());
        assert!(!proof.entry_derivable);
        let mut report = Report::new();
        emit_proof(&Policy::default(), "t", "f", &proof, &mut report);
        assert!(!report.by_lint("PP001").is_empty());
        assert!(!report.by_lint("PP004").is_empty());
    }

    #[test]
    fn over_instrumentation_is_redundant() {
        let m = compile("fn f(x) { if (x > 0) { return 1; } return 2; }");
        let f = &m.functions[0];
        // Measure every edge at its natural host: massively redundant.
        let preds = flow::reachable_predecessors(f);
        let counters: Vec<CounterSite> = flow::flow_edges(f)
            .into_iter()
            .map(|edge| CounterSite {
                edge,
                host: flow::counter_host(f, &preds, edge).unwrap_or(CounterHost::Split),
            })
            .collect();
        let plan = MeasurementPlan {
            num_edges: counters.len(),
            num_nodes: 0,
            counters,
            full_fallback: false,
        };
        let proof = prove_plan(f, &plan);
        assert!(proof.unrecoverable.is_empty());
        assert!(!proof.redundant.is_empty());
    }

    #[test]
    fn unsplit_critical_edge_is_flagged() {
        // fn with a critical edge: while-loop head -> body when body has
        // multiple preds is not guaranteed; build a diamond sharing arms.
        let m = compile(
            "fn f(x, y) { let r = 0; if (x > 0) { r = 1; } if (y > 0) { r = r + 2; } return r; }",
        );
        let f = &m.functions[0];
        let plan = flow::plan_function(f);
        // Corrupt every Split host into a bogus block host.
        let mut bad = plan.clone();
        let mut corrupted = false;
        for site in &mut bad.counters {
            if site.host == CounterHost::Split {
                site.host = CounterHost::Block(f.entry);
                corrupted = true;
            }
        }
        if !corrupted {
            // Shape produced no critical edge; corrupt a block host whose
            // correct witness is not the entry block.
            let preds = flow::reachable_predecessors(f);
            let site = bad
                .counters
                .iter_mut()
                .find(|s| {
                    flow::counter_host(f, &preds, s.edge) != Some(CounterHost::Block(f.entry))
                })
                .expect("some counter has a non-entry host");
            site.host = CounterHost::Block(f.entry);
        }
        let proof = prove_plan(f, &bad);
        assert!(!proof.bad_host.is_empty());
        assert!(!proof.certified());
    }

    #[test]
    fn edge_classification_finds_back_and_exit_edges() {
        let m = compile("fn f(n) { let i = 0; while (i < n) { i = i + 1; } return i; }");
        let f = &m.functions[0];
        let classes = classify_cfg_edges(f);
        assert!(classes.iter().any(|(_, _, k)| k.back), "{classes:?}");
        assert!(classes.iter().any(|(_, _, k)| k.loop_exit), "{classes:?}");
    }

    #[test]
    fn worklist_reaches_fixpoint_once_per_change() {
        // Chain propagation: node i sets i+1 dirty until the end.
        let mut visited = vec![0usize; 5];
        worklist_fixpoint(5, [0], |n, dirty| {
            visited[n] += 1;
            if n + 1 < 5 {
                dirty.push(n + 1);
            }
        });
        assert_eq!(visited, vec![1, 1, 1, 1, 1]);
    }
}
