//! `csspgo-analysis` — probe-invariant and profile-integrity diagnostics.
//!
//! A clippy-style lint layer over the CSSPGO reproduction: every check is a
//! registered [`Lint`] with a stable id, lints are escalated or silenced by a
//! [`Policy`] (`--deny` / `--allow`), and findings accumulate in a [`Report`]
//! that renders for humans or serializes to JSON for CI artifacts.
//!
//! Three lint families:
//!
//! * **`IV…` IR verifier** — structural well-formedness, wrapping
//!   [`csspgo_ir::verify`] (which now collects *all* findings).
//! * **`PI…` probe invariants** — pseudo-probe metadata health after any
//!   pass: unique probe ids per inline context, duplication-factor weights
//!   summing to ≤ 1 across clones, index watermarks, inline-stack shape, and
//!   (on fresh IR) discriminator discipline. Wraps
//!   [`csspgo_ir::probe_verify`].
//! * **`PF…` profile flow & integrity** — Kirchhoff-style conservation and
//!   dominance bounds over annotated block counts, edge/block-count
//!   reconciliation over inference-attached edge counts, context-tree
//!   consistency, checksum staleness, and probe-range checks over collected
//!   profiles.
//! * **`SM…` stale-profile matching** — lints over the anchor-based
//!   stale-profile matcher ([`csspgo_core::stalematch`]): alignment
//!   ambiguity, matcher invariants (injectivity, weight conservation),
//!   checksum-invisible call retargets, low-confidence renames. The
//!   [`diffreport`] module turns match outcomes into the `csspgo_diff`
//!   JSON report.
//! * **`PP…` placement prover** — the static recoverability prover for
//!   sparse counter placements ([`dataflow`]): certifies *before any
//!   execution* that a Ball–Larus spanning-tree placement determines every
//!   block/edge count by Kirchhoff elimination, and flags unrecoverable
//!   edges, redundant counters, unsplit critical edges, and underivable
//!   entry counts.
//! * **`WP…` weight provenance** — pedigree lints over annotated counts
//!   ([`provenance`]): every block count carries a
//!   [`csspgo_ir::Provenance`] tag (sampled / stale-matched / inferred /
//!   reconstructed), and these lints flag hot functions dominated by
//!   invented weight, measurement-source mixing inside loops, and
//!   excessive stale-salvage shares.
//!
//! The raw `IV`/`PI` checks deliberately live in `csspgo_ir` so the opt
//! pipeline's inter-pass checkpoints ([`csspgo_opt::verify_after_pass`])
//! can run them without a dependency cycle; this crate adds identity,
//! policy, and reporting on top, plus the profile-side analyses.
//!
//! [`csspgo_opt::verify_after_pass`]: https://docs.rs/csspgo-opt
//!
//! # Example
//!
//! ```
//! use csspgo_analysis::{Analyzer, Policy};
//!
//! let module = csspgo_ir::Module::new("demo");
//! let mut analyzer = Analyzer::new(Policy::deny_all());
//! analyzer.analyze_module("demo", &module, true);
//! assert!(!analyzer.report().has_denied());
//! ```

pub mod dataflow;
pub mod diag;
pub mod diffreport;
pub mod matching;
pub mod module_lints;
pub mod profile_lints;
pub mod provenance;

pub use dataflow::{classify_cfg_edges, prove_plan, CfgEdgeKind, FlowProof};
pub use diag::{
    explain, find_lint, render_lint_list, Diagnostic, Lint, Policy, Report, Severity, LINTS,
    LINT_FAMILIES,
};
pub use diffreport::{
    inference_quality, provenance_breakdown, DiffReport, FuncDiffRecord, InferenceQuality,
    ProvenanceBreakdown, ScenarioReport,
};
pub use module_lints::FlowTolerance;
pub use profile_lints::ContextTolerance;
pub use provenance::{ProvenanceWeights, WpTolerance};

use csspgo_core::context::ContextProfile;
use csspgo_core::profile::ProbeProfile;
use csspgo_core::stalematch::{MatchConfig, MatchOutcome};
use csspgo_ir::Module;

/// Tuning knobs for the analyses that need tolerance to sampling noise.
#[derive(Clone, Copy, Debug, Default)]
pub struct AnalyzerConfig {
    /// Slack for the flow lints (`PF001`/`PF002`/`PF006`).
    pub flow: FlowTolerance,
    /// Slack for the context-tree lint (`PF003`).
    pub context: ContextTolerance,
    /// Thresholds for the provenance lints (`WP001`–`WP003`).
    pub wp: WpTolerance,
}

/// The analysis driver: applies every lint family to modules and profiles,
/// accumulating one [`Report`] across units.
#[derive(Clone, Debug, Default)]
pub struct Analyzer {
    policy: Policy,
    config: AnalyzerConfig,
    report: Report,
}

impl Analyzer {
    /// Creates an analyzer with default tolerances.
    pub fn new(policy: Policy) -> Self {
        Analyzer {
            policy,
            config: AnalyzerConfig::default(),
            report: Report::new(),
        }
    }

    /// Creates an analyzer with explicit tolerances.
    pub fn with_config(policy: Policy, config: AnalyzerConfig) -> Self {
        Analyzer {
            policy,
            config,
            report: Report::new(),
        }
    }

    /// IR verifier + probe invariants (`IV001`, `PI001`–`PI004`; with
    /// `fresh`, also `PI005`/`PI006`). `fresh` means the module has not been
    /// through cloning passes yet — discriminator discipline only holds
    /// there.
    pub fn analyze_module(&mut self, unit: &str, module: &Module, fresh: bool) {
        module_lints::analyze_module(&self.policy, unit, module, fresh, &mut self.report);
    }

    /// Flow-conservation, dominance, and edge-reconciliation lints
    /// (`PF001`/`PF002`/`PF006`) over a profile-annotated module.
    pub fn analyze_flow(&mut self, unit: &str, module: &Module) {
        module_lints::analyze_flow(
            &self.policy,
            unit,
            module,
            self.config.flow,
            &mut self.report,
        );
    }

    /// Staleness and probe-range lints (`PF004`/`PF005`) over a flattened
    /// probe profile, checked against the module it claims to describe.
    pub fn analyze_probe_profile(&mut self, unit: &str, module: &Module, profile: &ProbeProfile) {
        profile_lints::analyze_probe_profile(&self.policy, unit, module, profile, &mut self.report);
    }

    /// Stale-profile matching lints (`SM001`–`SM005`): runs the anchor
    /// matcher over `profile` against `module` and lints the outcome,
    /// returning it for report building or count recovery.
    pub fn analyze_stale_match(
        &mut self,
        unit: &str,
        module: &Module,
        profile: &ProbeProfile,
        cfg: &MatchConfig,
    ) -> MatchOutcome {
        matching::analyze_stale_match(&self.policy, unit, module, profile, cfg, &mut self.report)
    }

    /// Counter-placement recoverability lints (`PP001`–`PP004`): plans the
    /// spanning-tree placement for every function of `module` and runs the
    /// static Kirchhoff prover over it. Returns the number of functions
    /// proven (exit-free full-fallback functions are trivially recoverable
    /// and skipped).
    pub fn analyze_placement(&mut self, unit: &str, module: &Module) -> usize {
        dataflow::analyze_placement(&self.policy, unit, module, &mut self.report)
    }

    /// Weight-provenance lints (`WP001`–`WP003`) over an annotated module;
    /// returns the module's per-tag weight totals.
    pub fn analyze_provenance(&mut self, unit: &str, module: &Module) -> ProvenanceWeights {
        self.analyze_provenance_with(unit, module, self.config.wp)
    }

    /// [`Analyzer::analyze_provenance`] with per-call tolerances, for
    /// stages whose expected provenance mix differs from production (e.g.
    /// a deliberate drift replay, where salvaged weight dominating the
    /// module is the point of the exercise, not a defect).
    pub fn analyze_provenance_with(
        &mut self,
        unit: &str,
        module: &Module,
        tol: WpTolerance,
    ) -> ProvenanceWeights {
        provenance::analyze_provenance(&self.policy, unit, module, tol, &mut self.report)
    }

    /// Context-tree consistency lint (`PF003`) over a context trie.
    pub fn analyze_context_profile(&mut self, unit: &str, profile: &ContextProfile) {
        profile_lints::analyze_context_profile(
            &self.policy,
            unit,
            profile,
            self.config.context,
            &mut self.report,
        );
    }

    /// The accumulated findings.
    pub fn report(&self) -> &Report {
        &self.report
    }

    /// Consumes the analyzer, returning the findings.
    pub fn into_report(self) -> Report {
        self.report
    }
}
