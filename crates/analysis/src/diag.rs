//! The diagnostics engine: lint registry, severities, reports.
//!
//! Modeled on clippy/rustc lints: every check is a registered [`Lint`] with a
//! stable id (`PI001`), a kebab-case name (`probe-duplicate-id`) and a
//! default [`Severity`]. A [`Policy`] escalates (`--deny`) or silences
//! (`--allow`) lints by id, name or `all`. Checks append [`Diagnostic`]s to a
//! [`Report`], which renders for humans or serializes to JSON.

use serde::Serialize;
use std::fmt;

/// How severe a diagnostic is. `Deny` diagnostics fail the build
/// (`csspgo_lint` exits nonzero).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug, Serialize)]
pub enum Severity {
    /// Silenced: the diagnostic is not recorded.
    Allow,
    /// Recorded and reported, does not fail the build.
    Warn,
    /// Recorded and fails the build.
    Deny,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Allow => f.write_str("allow"),
            Severity::Warn => f.write_str("warning"),
            Severity::Deny => f.write_str("error"),
        }
    }
}

/// A registered check with a stable identity.
#[derive(Clone, Copy, Debug)]
pub struct Lint {
    /// Stable id, never reused: `IV…` IR verifier, `PI…` probe invariants,
    /// `PF…` profile flow/integrity, `SM…` stale matching, `PP…` placement
    /// prover, `WP…` weight provenance.
    pub id: &'static str,
    /// Kebab-case name, usable interchangeably with the id on the CLI.
    pub name: &'static str,
    /// Severity when no policy overrides it.
    pub default_severity: Severity,
    /// One-line description (shown in `csspgo_lint --list`).
    pub description: &'static str,
    /// One-paragraph doc (shown by `csspgo_lint --explain <ID>`): what the
    /// check proves, when it fires, and what to do about it.
    pub explanation: &'static str,
}

/// Lint families in presentation order, with one-line descriptions (the
/// README table and `--list` grouping follow this order).
pub const LINT_FAMILIES: &[(&str, &str)] = &[
    ("IV", "IR verifier: structural well-formedness"),
    ("PI", "pseudo-probe invariants after any pass"),
    ("PF", "profile flow & integrity over annotated counts"),
    ("SM", "stale-profile matching soundness"),
    ("PP", "counter-placement recoverability prover"),
    ("WP", "annotated-weight provenance quality"),
];

/// The position of a lint id's family in [`LINT_FAMILIES`] (unknown
/// prefixes sort last).
fn family_rank(id: &str) -> usize {
    LINT_FAMILIES
        .iter()
        .position(|(prefix, _)| id.starts_with(prefix))
        .unwrap_or(LINT_FAMILIES.len())
}

/// Every lint the analyzer can emit. Grouped by family; ids are
/// append-only and never reused.
pub const LINTS: &[Lint] = &[
    Lint {
        id: "IV001",
        name: "ir-verify",
        default_severity: Severity::Deny,
        description: "IR well-formedness (CFG, terminators, registers, layout)",
        explanation: "The structural IR verifier found a malformed function: a block \
            without a terminator, a branch to a dead or out-of-range block, a use of an \
            unallocated virtual register, or a layout that misses or duplicates live \
            blocks. Every pass is expected to leave the module verifier-clean; a finding \
            here means a transformation bug, and all downstream analyses are unreliable \
            until it is fixed.",
    },
    Lint {
        id: "PI001",
        name: "probe-duplicate-id",
        default_severity: Severity::Deny,
        description: "duplicated probe id without a duplication factor",
        explanation: "Two pseudo-probes in the same inline context share an index but \
            neither carries a duplication factor. Cloning passes (unroll, tail-dup) must \
            mark copies with a factor so correlation can split observed weight between \
            them; an unmarked duplicate double-counts every sample that lands on it.",
    },
    Lint {
        id: "PI002",
        name: "probe-dup-factor",
        default_severity: Severity::Deny,
        description: "duplicated probe copies whose factor weights exceed 1",
        explanation: "The duplication-factor weights of one probe's clones sum to more \
            than 1. The invariant is Σ(1/factor) ≤ 1 across all copies of a probe in one \
            inline context — anything larger inflates the reconstructed count for the \
            original source block. Usually a cloning pass forgot to scale the factors of \
            pre-existing copies when cloning again.",
    },
    Lint {
        id: "PI003",
        name: "probe-index-range",
        default_severity: Severity::Deny,
        description: "probe index 0, past the owner's watermark, or unknown owner",
        explanation: "A pseudo-probe names an index outside its owner function's \
            allocated range (indices are 1-based and dense up to the per-function \
            watermark) or an owner function that does not exist. Correlation keys on \
            (owner, index), so an out-of-range probe either drops weight or attributes \
            it to a block that never existed.",
    },
    Lint {
        id: "PI004",
        name: "probe-inline-stack",
        default_severity: Severity::Deny,
        description: "probe inline stack malformed against the callgraph",
        explanation: "A probe's inline stack does not describe a plausible inlining: a \
            stack frame names a call site that is not a call-site probe of its caller, \
            or the stack's owner chain is inconsistent. Context-sensitive correlation \
            walks these stacks to rebuild calling contexts, so a malformed stack \
            misattributes every sample beneath it.",
    },
    Lint {
        id: "PI005",
        name: "discriminator-conflict",
        default_severity: Severity::Warn,
        description: "one source line with several discriminators in one block (fresh IR)",
        explanation: "On freshly-compiled IR, instructions from one source line inside a \
            single basic block should share a discriminator; multiple discriminators in \
            one block mean the discriminator assignment pass split a line for no \
            control-flow reason. Harmless for execution but it wastes discriminator \
            space and weakens AutoFDO-style correlation.",
    },
    Lint {
        id: "PI006",
        name: "discriminator-monotone",
        default_severity: Severity::Warn,
        description: "per-line discriminators not monotone across blocks (fresh IR)",
        explanation: "On freshly-compiled IR, the discriminators assigned to one source \
            line should increase with block id so a (line, discriminator) pair \
            identifies a unique block. Non-monotone assignment is a discriminator-pass \
            bug: correlation still works but becomes order-dependent.",
    },
    Lint {
        id: "PF001",
        name: "flow-conservation",
        default_severity: Severity::Warn,
        description: "annotated block counts violate Kirchhoff inflow/outflow bounds",
        explanation: "An annotated block's count is outside the bounds implied by its \
            neighbors: it executes more often than everything that can branch into it \
            combined, or less often than a successor that only it feeds. Sampling noise \
            causes small violations (the tolerance absorbs those); large ones mean the \
            profile was corrupted, stale-matched badly, or inference was skipped.",
    },
    Lint {
        id: "PF002",
        name: "flow-dominance",
        default_severity: Severity::Warn,
        description: "acyclic block hotter than its immediate dominator",
        explanation: "Outside any loop, a block cannot execute more often than its \
            immediate dominator — every path to it passes through the dominator. A \
            violation beyond the noise tolerance points at misattributed samples or a \
            bad stale-profile transfer.",
    },
    Lint {
        id: "PF003",
        name: "context-parent-bound",
        default_severity: Severity::Warn,
        description: "child-context entry count exceeds the parent call-site probe count",
        explanation: "In the context trie, a child context claims more entries than its \
            parent's call-site probe observed calls. The context tree is hierarchical by \
            construction, so a child exceeding its parent (beyond tolerance) means \
            samples were attributed to the wrong context or the trie was merged \
            incorrectly.",
    },
    Lint {
        id: "PF004",
        name: "profile-checksum-stale",
        default_severity: Severity::Warn,
        description: "profile checksum does not match the module's CFG checksum",
        explanation: "A function's profile carries the CFG checksum of the build it was \
            collected on, and it differs from the current module's — the source drifted \
            since collection. Counts for that function are untrustworthy as-is; either \
            recollect, or run the stale matcher (stale_matching: recover) to salvage \
            what still aligns.",
    },
    Lint {
        id: "PF005",
        name: "profile-probe-range",
        default_severity: Severity::Warn,
        description: "profile references probe indices the function never allocated",
        explanation: "The profile contains counts for probe indices beyond what the \
            function ever allocated. Those entries cannot be applied and usually \
            indicate the profile belongs to a different (newer) build of the function \
            than the checksum suggests, or the profile file was corrupted.",
    },
    Lint {
        id: "PF006",
        name: "edge-flow-conservation",
        default_severity: Severity::Warn,
        description:
            "annotated edge counts do not reconcile with block counts (or name non-CFG edges)",
        explanation: "Inference attached per-edge counts that disagree with the block \
            counts they must sum to (a block's count should equal the totals of its \
            recorded in- and out-edges within tolerance), or an edge annotation names a \
            pair of blocks with no CFG edge between them. Catches inconsistent solver \
            output that the block-level PF lints cannot see.",
    },
    Lint {
        id: "SM001",
        name: "match-ambiguous-anchor",
        default_severity: Severity::Warn,
        description: "repeated call-anchor label: stale matching is positional there",
        explanation: "The stale matcher aligns old and new probes on call anchors \
            (callee names); a function contains the same callee name several times, so \
            alignment between repeats falls back to position and may transfer weight to \
            the wrong copy when code between them changed. Confidence in salvaged counts \
            for this function is reduced.",
    },
    Lint {
        id: "SM002",
        name: "match-two-to-one",
        default_severity: Severity::Deny,
        description: "two source probes mapped onto one target probe (matcher invariant)",
        explanation: "The matcher's transfer map sent two distinct source probes to the \
            same target probe. The transfer is injective by construction, so this firing \
            means a matcher bug: weight would be silently double-applied to the target \
            block. Counts from this match must not be trusted.",
    },
    Lint {
        id: "SM003",
        name: "match-weight-inflation",
        default_severity: Severity::Deny,
        description: "recovered weight exceeds what the source profile held (matcher invariant)",
        explanation: "The weight the matcher transferred into the fresh profile exceeds \
            the total weight present in the stale source profile. Matching can only \
            move or drop weight, never create it; inflation means a matcher bug and the \
            salvaged profile overstates hotness.",
    },
    Lint {
        id: "SM004",
        name: "match-anchor-drift",
        default_severity: Severity::Warn,
        description: "checksum matches but call-anchor targets changed (silent retarget)",
        explanation: "A function's CFG checksum still matches the profile, but the \
            callee names at its call anchors changed — e.g. a call was redirected to a \
            different function without altering control flow. The profile applies \
            cleanly yet its call-context assumptions are stale; inlining decisions \
            derived from it may chase the old callee.",
    },
    Lint {
        id: "SM005",
        name: "match-rename-low-confidence",
        default_severity: Severity::Warn,
        description: "function rename adopted below the high-confidence similarity threshold",
        explanation: "Rename detection adopted a stale function's profile for a \
            new/renamed function on anchor-set similarity below the high-confidence \
            threshold. The transfer may still be right, but it rests on circumstantial \
            evidence; verify the rename is real before trusting hot-path decisions in \
            that function.",
    },
    Lint {
        id: "PP001",
        name: "placement-unrecoverable-edge",
        default_severity: Severity::Deny,
        description: "counter placement cannot recover this flow edge's count",
        explanation: "Kirchhoff elimination over the planned counter set got stuck with \
            this augmented-flow-graph edge still unknown: the unmeasured edges contain \
            an undirected cycle through it, so no amount of algebra determines its \
            count. The placement would silently produce an under-determined profile. A \
            correct spanning-tree placement measures exactly the co-tree, which never \
            has this problem — so this firing means a hand-built or corrupted plan.",
    },
    Lint {
        id: "PP002",
        name: "placement-redundant-counter",
        default_severity: Severity::Warn,
        description: "counter measures an edge already derivable from the others",
        explanation: "This counted edge connects two components of the unmeasured-edge \
            forest, meaning flow conservation already determines its count from the \
            other counters — the counter adds run-time cost without adding information. \
            The minimal (Ball–Larus) placement counts exactly the co-tree of a spanning \
            tree; a redundant counter means the plan is over-instrumented.",
    },
    Lint {
        id: "PP003",
        name: "placement-critical-edge-unsplit",
        default_severity: Severity::Deny,
        description: "counter hosted in a block that does not uniquely witness its edge",
        explanation: "A counter site claims an existing block as its host, but that \
            block's execution count does not equal the edge's traversal count: the edge \
            is critical (its source has several successors and its target several \
            predecessors), or the chosen block witnesses other flow too. The \
            instrumentation pass must split the edge with a fresh counter-only block; \
            reading the counter as an edge count without the split mixes in unrelated \
            executions.",
    },
    Lint {
        id: "PP004",
        name: "placement-entry-not-derivable",
        default_severity: Severity::Deny,
        description: "function invocation count not derivable from the placement",
        explanation: "The virtual exit→entry edge — the function's invocation count — \
            is neither validly measured (the entry has real predecessors, so a counter \
            in the entry block over-counts) nor derivable by elimination from the \
            measured edges. Entry counts drive the inliner and the context trie, so a \
            placement that loses them is unusable even if every interior edge is \
            recoverable.",
    },
    Lint {
        id: "WP001",
        name: "provenance-hot-inferred",
        default_severity: Severity::Warn,
        description: "hot function whose weight is majority solver-inferred",
        explanation: "A function carrying a significant share of the module's total \
            weight got most of that weight from flow inference rather than from raw \
            samples, stale matching, or counter reconstruction — the solver invented or \
            materially adjusted the majority of its counts. Inference smooths \
            inconsistencies well, but a hot function dominated by invented weight means \
            the optimizer is trusting the solver, not measurements; prefer recollecting \
            a profile for it.",
    },
    Lint {
        id: "WP002",
        name: "provenance-loop-mixing",
        default_severity: Severity::Warn,
        description: "one loop annotated from several measurement sources",
        explanation: "Blocks of a single loop carry weight from different measurement \
            sources (raw samples vs stale-matched vs counter-reconstructed). Relative \
            frequencies inside a loop drive unrolling and layout, and weights from \
            different sources are not calibrated against each other — their ratios \
            inside one loop are meaningless. Usually means a partial stale recovery \
            landed inside a loop; re-running inference homogenizes it.",
    },
    Lint {
        id: "WP003",
        name: "provenance-salvage-share",
        default_severity: Severity::Warn,
        description: "stale-matched weight exceeds the configured share of module weight",
        explanation: "More than the configured share (default 50%) of the module's \
            annotated weight was transferred by the stale-profile matcher instead of \
            being measured on the current build. Salvage is designed to bridge a \
            release or two; when it carries most of the profile, drift compounds \
            silently and profile quality decays — schedule a fresh collection rather \
            than salvaging again.",
    },
];

/// Looks a lint up by stable id (`PI001`) or name (`probe-duplicate-id`).
pub fn find_lint(key: &str) -> Option<&'static Lint> {
    LINTS
        .iter()
        .find(|l| l.id.eq_ignore_ascii_case(key) || l.name == key)
}

/// The full lint registry rendered as an aligned table (ids, names,
/// default severities, one-line docs) — `csspgo_lint --list`. Output is
/// stable: sorted by family ([`LINT_FAMILIES`] order) then id, regardless
/// of registration order.
pub fn render_lint_list() -> String {
    let name_w = LINTS.iter().map(|l| l.name.len()).max().unwrap_or(0);
    let mut sorted: Vec<&Lint> = LINTS.iter().collect();
    sorted.sort_by_key(|l| (family_rank(l.id), l.id));
    let mut out = String::new();
    for l in sorted {
        out.push_str(&format!(
            "{}  {:name_w$}  {:7}  {}\n",
            l.id,
            l.name,
            l.default_severity.to_string(),
            l.description
        ));
    }
    out
}

/// Renders the one-paragraph documentation for a lint id or name —
/// `csspgo_lint --explain <ID>`. `None` when the key names no lint.
pub fn explain(key: &str) -> Option<String> {
    let l = find_lint(key)?;
    let mut out = format!(
        "{} ({})\ndefault severity: {}\n\n{}\n\n",
        l.id, l.name, l.default_severity, l.description
    );
    // Re-wrap the explanation to readable lines.
    let mut col = 0usize;
    for word in l.explanation.split_whitespace() {
        if col > 0 && col + 1 + word.len() > 78 {
            out.push('\n');
            col = 0;
        } else if col > 0 {
            out.push(' ');
            col += 1;
        }
        out.push_str(word);
        col += word.len();
    }
    out.push('\n');
    Some(out)
}

/// Severity overrides, applied at diagnostic-emission time.
///
/// Precedence (highest first): `allow` > `deny` > the lint's default. The
/// special key `all` matches every lint.
#[derive(Clone, Debug, Default)]
pub struct Policy {
    /// Lints escalated to [`Severity::Deny`] (ids, names, or `all`).
    pub deny: Vec<String>,
    /// Lints silenced to [`Severity::Allow`] (ids, names, or `all`).
    pub allow: Vec<String>,
}

impl Policy {
    /// A policy denying every lint (`--deny all`).
    pub fn deny_all() -> Self {
        Policy {
            deny: vec!["all".into()],
            allow: Vec::new(),
        }
    }

    fn matches(list: &[String], lint: &Lint) -> bool {
        list.iter().any(|k| {
            k.eq_ignore_ascii_case("all") || k.eq_ignore_ascii_case(lint.id) || k == lint.name
        })
    }

    /// The effective severity of `lint` under this policy.
    pub fn severity_for(&self, lint: &Lint) -> Severity {
        if Self::matches(&self.allow, lint) {
            Severity::Allow
        } else if Self::matches(&self.deny, lint) {
            Severity::Deny
        } else {
            lint.default_severity
        }
    }

    /// Validates that every key names a known lint (or `all`).
    pub fn validate(&self) -> Result<(), String> {
        for key in self.deny.iter().chain(self.allow.iter()) {
            if !key.eq_ignore_ascii_case("all") && find_lint(key).is_none() {
                return Err(format!("unknown lint `{key}`"));
            }
        }
        Ok(())
    }
}

/// One finding.
#[derive(Clone, Debug, Serialize)]
pub struct Diagnostic {
    /// Stable lint id (`PI001`).
    pub lint: String,
    /// Lint name (`probe-duplicate-id`).
    pub name: String,
    /// Effective severity after policy application.
    pub severity: Severity,
    /// Analysis unit (workload or module name).
    pub unit: String,
    /// Function the finding is in, when applicable.
    pub func: Option<String>,
    /// Finer location (block, probe, context path), when applicable.
    pub location: Option<String>,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}/{}] {}",
            self.severity, self.lint, self.name, self.unit
        )?;
        if let Some(func) = &self.func {
            write!(f, " fn {func}")?;
        }
        if let Some(loc) = &self.location {
            write!(f, " at {loc}")?;
        }
        write!(f, ": {}", self.message)
    }
}

/// An accumulating set of diagnostics across analysis units.
#[derive(Clone, Debug, Default, Serialize)]
pub struct Report {
    /// All recorded diagnostics, in emission order.
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// Creates an empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a finding for `lint` under `policy`. Findings with an
    /// effective severity of `Allow` are dropped.
    pub fn emit(
        &mut self,
        policy: &Policy,
        lint: &'static Lint,
        unit: &str,
        func: Option<String>,
        location: Option<String>,
        message: String,
    ) {
        let severity = policy.severity_for(lint);
        if severity == Severity::Allow {
            return;
        }
        self.diagnostics.push(Diagnostic {
            lint: lint.id.to_string(),
            name: lint.name.to_string(),
            severity,
            unit: unit.to_string(),
            func,
            location,
            message,
        });
    }

    /// Number of `Deny` diagnostics (nonzero fails the build).
    pub fn denied(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Deny)
            .count()
    }

    /// Number of `Warn` diagnostics.
    pub fn warnings(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warn)
            .count()
    }

    /// Whether any diagnostic fails the build.
    pub fn has_denied(&self) -> bool {
        self.denied() > 0
    }

    /// Diagnostics for one lint id (tests and tooling).
    pub fn by_lint<'a>(&'a self, id: &str) -> Vec<&'a Diagnostic> {
        self.diagnostics.iter().filter(|d| d.lint == id).collect()
    }

    /// Human-readable rendering, one line per diagnostic plus a summary.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.to_string());
            out.push('\n');
        }
        out.push_str(&format!(
            "{} error(s), {} warning(s)\n",
            self.denied(),
            self.warnings()
        ));
        out
    }

    /// JSON rendering (the `csspgo_lint --json` artifact).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serialization is infallible")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lint_ids_unique_and_resolvable() {
        let mut seen = std::collections::HashSet::new();
        for l in LINTS {
            assert!(seen.insert(l.id), "duplicate lint id {}", l.id);
            assert!(seen.insert(l.name), "name colliding with an id: {}", l.name);
            assert_eq!(find_lint(l.id).unwrap().id, l.id);
            assert_eq!(find_lint(l.name).unwrap().id, l.id);
        }
        assert!(find_lint("no-such-lint").is_none());
    }

    #[test]
    fn lint_list_renders_every_lint() {
        let list = render_lint_list();
        for l in LINTS {
            let line = list
                .lines()
                .find(|line| line.starts_with(l.id))
                .unwrap_or_else(|| panic!("{} missing from --list output", l.id));
            assert!(line.contains(l.name), "{line}");
            assert!(line.contains(l.description), "{line}");
            assert!(
                line.contains(&l.default_severity.to_string()),
                "{line} lacks severity"
            );
        }
        assert_eq!(list.lines().count(), LINTS.len());
    }

    #[test]
    fn lint_list_is_family_sorted() {
        let list = render_lint_list();
        let ranks: Vec<(usize, String)> = list
            .lines()
            .map(|line| {
                let id = line.split_whitespace().next().unwrap().to_string();
                (family_rank(&id), id)
            })
            .collect();
        let mut sorted = ranks.clone();
        sorted.sort();
        assert_eq!(ranks, sorted, "--list output not family-sorted");
        // Every family in LINT_FAMILIES has at least one lint.
        for (prefix, _) in LINT_FAMILIES {
            assert!(
                LINTS.iter().any(|l| l.id.starts_with(prefix)),
                "family {prefix} has no lints"
            );
        }
    }

    #[test]
    fn explain_renders_every_lint() {
        for l in LINTS {
            let text = explain(l.id).unwrap_or_else(|| panic!("{} has no explanation", l.id));
            assert!(text.contains(l.id) && text.contains(l.name), "{text}");
            assert!(
                !l.explanation.is_empty() && text.len() > 100,
                "{} explanation too thin",
                l.id
            );
            assert_eq!(explain(l.name).as_deref(), Some(text.as_str()));
        }
        assert!(explain("no-such-lint").is_none());
    }

    #[test]
    fn policy_precedence_allow_over_deny_over_default() {
        let lint = find_lint("PF001").unwrap(); // default Warn
        assert_eq!(Policy::default().severity_for(lint), Severity::Warn);
        assert_eq!(Policy::deny_all().severity_for(lint), Severity::Deny);
        let p = Policy {
            deny: vec!["all".into()],
            allow: vec!["flow-conservation".into()],
        };
        assert_eq!(p.severity_for(lint), Severity::Allow);
    }

    #[test]
    fn allowed_diagnostics_are_dropped() {
        let mut r = Report::new();
        let p = Policy {
            deny: Vec::new(),
            allow: vec!["all".into()],
        };
        r.emit(&p, find_lint("IV001").unwrap(), "u", None, None, "x".into());
        assert!(r.diagnostics.is_empty());
    }

    #[test]
    fn report_counts_and_json() {
        let mut r = Report::new();
        let p = Policy::default();
        r.emit(
            &p,
            find_lint("IV001").unwrap(),
            "u",
            Some("f".into()),
            Some("bb0".into()),
            "broken".into(),
        );
        r.emit(
            &p,
            find_lint("PF001").unwrap(),
            "u",
            None,
            None,
            "leaky".into(),
        );
        assert_eq!(r.denied(), 1);
        assert_eq!(r.warnings(), 1);
        assert!(r.has_denied());
        let json = r.to_json();
        assert!(json.contains("IV001") && json.contains("PF001"), "{json}");
        assert!(r.render_human().contains("1 error(s), 1 warning(s)"));
    }

    #[test]
    fn unknown_policy_keys_rejected() {
        let p = Policy {
            deny: vec!["PI999".into()],
            allow: Vec::new(),
        };
        assert!(p.validate().is_err());
        assert!(Policy::deny_all().validate().is_ok());
    }
}
