//! The diagnostics engine: lint registry, severities, reports.
//!
//! Modeled on clippy/rustc lints: every check is a registered [`Lint`] with a
//! stable id (`PI001`), a kebab-case name (`probe-duplicate-id`) and a
//! default [`Severity`]. A [`Policy`] escalates (`--deny`) or silences
//! (`--allow`) lints by id, name or `all`. Checks append [`Diagnostic`]s to a
//! [`Report`], which renders for humans or serializes to JSON.

use serde::Serialize;
use std::fmt;

/// How severe a diagnostic is. `Deny` diagnostics fail the build
/// (`csspgo_lint` exits nonzero).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug, Serialize)]
pub enum Severity {
    /// Silenced: the diagnostic is not recorded.
    Allow,
    /// Recorded and reported, does not fail the build.
    Warn,
    /// Recorded and fails the build.
    Deny,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Allow => f.write_str("allow"),
            Severity::Warn => f.write_str("warning"),
            Severity::Deny => f.write_str("error"),
        }
    }
}

/// A registered check with a stable identity.
#[derive(Clone, Copy, Debug)]
pub struct Lint {
    /// Stable id, never reused: `IV…` IR verifier, `PI…` probe invariants,
    /// `PF…` profile flow/integrity.
    pub id: &'static str,
    /// Kebab-case name, usable interchangeably with the id on the CLI.
    pub name: &'static str,
    /// Severity when no policy overrides it.
    pub default_severity: Severity,
    /// One-line description (shown in `csspgo_lint --list`).
    pub description: &'static str,
}

/// Every lint the analyzer can emit. Sorted by id; ids are append-only.
pub const LINTS: &[Lint] = &[
    Lint {
        id: "IV001",
        name: "ir-verify",
        default_severity: Severity::Deny,
        description: "IR well-formedness (CFG, terminators, registers, layout)",
    },
    Lint {
        id: "PI001",
        name: "probe-duplicate-id",
        default_severity: Severity::Deny,
        description: "duplicated probe id without a duplication factor",
    },
    Lint {
        id: "PI002",
        name: "probe-dup-factor",
        default_severity: Severity::Deny,
        description: "duplicated probe copies whose factor weights exceed 1",
    },
    Lint {
        id: "PI003",
        name: "probe-index-range",
        default_severity: Severity::Deny,
        description: "probe index 0, past the owner's watermark, or unknown owner",
    },
    Lint {
        id: "PI004",
        name: "probe-inline-stack",
        default_severity: Severity::Deny,
        description: "probe inline stack malformed against the callgraph",
    },
    Lint {
        id: "PI005",
        name: "discriminator-conflict",
        default_severity: Severity::Warn,
        description: "one source line with several discriminators in one block (fresh IR)",
    },
    Lint {
        id: "PI006",
        name: "discriminator-monotone",
        default_severity: Severity::Warn,
        description: "per-line discriminators not monotone across blocks (fresh IR)",
    },
    Lint {
        id: "PF001",
        name: "flow-conservation",
        default_severity: Severity::Warn,
        description: "annotated block counts violate Kirchhoff inflow/outflow bounds",
    },
    Lint {
        id: "PF002",
        name: "flow-dominance",
        default_severity: Severity::Warn,
        description: "acyclic block hotter than its immediate dominator",
    },
    Lint {
        id: "PF003",
        name: "context-parent-bound",
        default_severity: Severity::Warn,
        description: "child-context entry count exceeds the parent call-site probe count",
    },
    Lint {
        id: "PF004",
        name: "profile-checksum-stale",
        default_severity: Severity::Warn,
        description: "profile checksum does not match the module's CFG checksum",
    },
    Lint {
        id: "PF005",
        name: "profile-probe-range",
        default_severity: Severity::Warn,
        description: "profile references probe indices the function never allocated",
    },
    Lint {
        id: "PF006",
        name: "edge-flow-conservation",
        default_severity: Severity::Warn,
        description:
            "annotated edge counts do not reconcile with block counts (or name non-CFG edges)",
    },
    Lint {
        id: "SM001",
        name: "match-ambiguous-anchor",
        default_severity: Severity::Warn,
        description: "repeated call-anchor label: stale matching is positional there",
    },
    Lint {
        id: "SM002",
        name: "match-two-to-one",
        default_severity: Severity::Deny,
        description: "two source probes mapped onto one target probe (matcher invariant)",
    },
    Lint {
        id: "SM003",
        name: "match-weight-inflation",
        default_severity: Severity::Deny,
        description: "recovered weight exceeds what the source profile held (matcher invariant)",
    },
    Lint {
        id: "SM004",
        name: "match-anchor-drift",
        default_severity: Severity::Warn,
        description: "checksum matches but call-anchor targets changed (silent retarget)",
    },
    Lint {
        id: "SM005",
        name: "match-rename-low-confidence",
        default_severity: Severity::Warn,
        description: "function rename adopted below the high-confidence similarity threshold",
    },
];

/// Looks a lint up by stable id (`PI001`) or name (`probe-duplicate-id`).
pub fn find_lint(key: &str) -> Option<&'static Lint> {
    LINTS
        .iter()
        .find(|l| l.id.eq_ignore_ascii_case(key) || l.name == key)
}

/// The full lint registry rendered as an aligned table (ids, names,
/// default severities, one-line docs) — `csspgo_lint --list`.
pub fn render_lint_list() -> String {
    let name_w = LINTS.iter().map(|l| l.name.len()).max().unwrap_or(0);
    let mut out = String::new();
    for l in LINTS {
        out.push_str(&format!(
            "{}  {:name_w$}  {:7}  {}\n",
            l.id,
            l.name,
            l.default_severity.to_string(),
            l.description
        ));
    }
    out
}

/// Severity overrides, applied at diagnostic-emission time.
///
/// Precedence (highest first): `allow` > `deny` > the lint's default. The
/// special key `all` matches every lint.
#[derive(Clone, Debug, Default)]
pub struct Policy {
    /// Lints escalated to [`Severity::Deny`] (ids, names, or `all`).
    pub deny: Vec<String>,
    /// Lints silenced to [`Severity::Allow`] (ids, names, or `all`).
    pub allow: Vec<String>,
}

impl Policy {
    /// A policy denying every lint (`--deny all`).
    pub fn deny_all() -> Self {
        Policy {
            deny: vec!["all".into()],
            allow: Vec::new(),
        }
    }

    fn matches(list: &[String], lint: &Lint) -> bool {
        list.iter().any(|k| {
            k.eq_ignore_ascii_case("all") || k.eq_ignore_ascii_case(lint.id) || k == lint.name
        })
    }

    /// The effective severity of `lint` under this policy.
    pub fn severity_for(&self, lint: &Lint) -> Severity {
        if Self::matches(&self.allow, lint) {
            Severity::Allow
        } else if Self::matches(&self.deny, lint) {
            Severity::Deny
        } else {
            lint.default_severity
        }
    }

    /// Validates that every key names a known lint (or `all`).
    pub fn validate(&self) -> Result<(), String> {
        for key in self.deny.iter().chain(self.allow.iter()) {
            if !key.eq_ignore_ascii_case("all") && find_lint(key).is_none() {
                return Err(format!("unknown lint `{key}`"));
            }
        }
        Ok(())
    }
}

/// One finding.
#[derive(Clone, Debug, Serialize)]
pub struct Diagnostic {
    /// Stable lint id (`PI001`).
    pub lint: String,
    /// Lint name (`probe-duplicate-id`).
    pub name: String,
    /// Effective severity after policy application.
    pub severity: Severity,
    /// Analysis unit (workload or module name).
    pub unit: String,
    /// Function the finding is in, when applicable.
    pub func: Option<String>,
    /// Finer location (block, probe, context path), when applicable.
    pub location: Option<String>,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}/{}] {}",
            self.severity, self.lint, self.name, self.unit
        )?;
        if let Some(func) = &self.func {
            write!(f, " fn {func}")?;
        }
        if let Some(loc) = &self.location {
            write!(f, " at {loc}")?;
        }
        write!(f, ": {}", self.message)
    }
}

/// An accumulating set of diagnostics across analysis units.
#[derive(Clone, Debug, Default, Serialize)]
pub struct Report {
    /// All recorded diagnostics, in emission order.
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// Creates an empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a finding for `lint` under `policy`. Findings with an
    /// effective severity of `Allow` are dropped.
    pub fn emit(
        &mut self,
        policy: &Policy,
        lint: &'static Lint,
        unit: &str,
        func: Option<String>,
        location: Option<String>,
        message: String,
    ) {
        let severity = policy.severity_for(lint);
        if severity == Severity::Allow {
            return;
        }
        self.diagnostics.push(Diagnostic {
            lint: lint.id.to_string(),
            name: lint.name.to_string(),
            severity,
            unit: unit.to_string(),
            func,
            location,
            message,
        });
    }

    /// Number of `Deny` diagnostics (nonzero fails the build).
    pub fn denied(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Deny)
            .count()
    }

    /// Number of `Warn` diagnostics.
    pub fn warnings(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warn)
            .count()
    }

    /// Whether any diagnostic fails the build.
    pub fn has_denied(&self) -> bool {
        self.denied() > 0
    }

    /// Diagnostics for one lint id (tests and tooling).
    pub fn by_lint<'a>(&'a self, id: &str) -> Vec<&'a Diagnostic> {
        self.diagnostics.iter().filter(|d| d.lint == id).collect()
    }

    /// Human-readable rendering, one line per diagnostic plus a summary.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.to_string());
            out.push('\n');
        }
        out.push_str(&format!(
            "{} error(s), {} warning(s)\n",
            self.denied(),
            self.warnings()
        ));
        out
    }

    /// JSON rendering (the `csspgo_lint --json` artifact).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serialization is infallible")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lint_ids_unique_and_resolvable() {
        let mut seen = std::collections::HashSet::new();
        for l in LINTS {
            assert!(seen.insert(l.id), "duplicate lint id {}", l.id);
            assert!(seen.insert(l.name), "name colliding with an id: {}", l.name);
            assert_eq!(find_lint(l.id).unwrap().id, l.id);
            assert_eq!(find_lint(l.name).unwrap().id, l.id);
        }
        assert!(find_lint("no-such-lint").is_none());
    }

    #[test]
    fn lint_list_renders_every_lint() {
        let list = render_lint_list();
        for l in LINTS {
            let line = list
                .lines()
                .find(|line| line.starts_with(l.id))
                .unwrap_or_else(|| panic!("{} missing from --list output", l.id));
            assert!(line.contains(l.name), "{line}");
            assert!(line.contains(l.description), "{line}");
            assert!(
                line.contains(&l.default_severity.to_string()),
                "{line} lacks severity"
            );
        }
        assert_eq!(list.lines().count(), LINTS.len());
    }

    #[test]
    fn policy_precedence_allow_over_deny_over_default() {
        let lint = find_lint("PF001").unwrap(); // default Warn
        assert_eq!(Policy::default().severity_for(lint), Severity::Warn);
        assert_eq!(Policy::deny_all().severity_for(lint), Severity::Deny);
        let p = Policy {
            deny: vec!["all".into()],
            allow: vec!["flow-conservation".into()],
        };
        assert_eq!(p.severity_for(lint), Severity::Allow);
    }

    #[test]
    fn allowed_diagnostics_are_dropped() {
        let mut r = Report::new();
        let p = Policy {
            deny: Vec::new(),
            allow: vec!["all".into()],
        };
        r.emit(&p, find_lint("IV001").unwrap(), "u", None, None, "x".into());
        assert!(r.diagnostics.is_empty());
    }

    #[test]
    fn report_counts_and_json() {
        let mut r = Report::new();
        let p = Policy::default();
        r.emit(
            &p,
            find_lint("IV001").unwrap(),
            "u",
            Some("f".into()),
            Some("bb0".into()),
            "broken".into(),
        );
        r.emit(
            &p,
            find_lint("PF001").unwrap(),
            "u",
            None,
            None,
            "leaky".into(),
        );
        assert_eq!(r.denied(), 1);
        assert_eq!(r.warnings(), 1);
        assert!(r.has_denied());
        let json = r.to_json();
        assert!(json.contains("IV001") && json.contains("PF001"), "{json}");
        assert!(r.render_human().contains("1 error(s), 1 warning(s)"));
    }

    #[test]
    fn unknown_policy_keys_rejected() {
        let p = Policy {
            deny: vec!["PI999".into()],
            allow: Vec::new(),
        };
        assert!(p.validate().is_err());
        assert!(Policy::deny_all().validate().is_ok());
    }
}
