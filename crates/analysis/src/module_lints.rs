//! Module-level lints: IR well-formedness (`IV…`), probe invariants
//! (`PI…`), and annotated-count flow checks (`PF001`/`PF002`/`PF006`).
//!
//! The raw checks live in `csspgo_ir` (`verify`, `probe_verify`) so the opt
//! pipeline can call them between passes without depending on this crate;
//! here they are wrapped as registered lints with stable ids.

use crate::diag::{find_lint, Lint, Policy, Report};
use csspgo_ir::cfg;
use csspgo_ir::dom::Dominators;
use csspgo_ir::ids::BlockId;
use csspgo_ir::loops::LoopInfo;
use csspgo_ir::probe_verify::{self, ProbeIssueKind};
use csspgo_ir::{Function, Module};

fn lint(id: &str) -> &'static Lint {
    find_lint(id).expect("registry covers every emitted lint")
}

fn probe_lint(kind: ProbeIssueKind) -> &'static Lint {
    match kind {
        ProbeIssueKind::DuplicateId => lint("PI001"),
        ProbeIssueKind::MissingDupFactor => lint("PI002"),
        ProbeIssueKind::IndexOutOfRange => lint("PI003"),
        ProbeIssueKind::MalformedInlineStack => lint("PI004"),
        ProbeIssueKind::DiscriminatorConflict => lint("PI005"),
        ProbeIssueKind::DiscriminatorNonMonotone => lint("PI006"),
    }
}

/// Runs the IR verifier (`IV001`) and the probe invariants (`PI001`–`PI004`)
/// over `module`. With `fresh` set, also runs the fresh-IR-only
/// discriminator lints (`PI005`/`PI006`) — cloning passes may legitimately
/// replicate discriminators, so these only apply before optimization.
pub fn analyze_module(
    policy: &Policy,
    unit: &str,
    module: &Module,
    fresh: bool,
    report: &mut Report,
) {
    for e in csspgo_ir::verify::verify_module(module) {
        let func = module.func(e.func).name.clone();
        report.emit(
            policy,
            lint("IV001"),
            unit,
            Some(func),
            e.block.map(|b| b.to_string()),
            e.message,
        );
    }
    let mut issues = probe_verify::check_module(module);
    if fresh {
        for f in &module.functions {
            issues.extend(probe_verify::check_discriminators(f));
        }
    }
    for issue in issues {
        let func = module.func(issue.func).name.clone();
        report.emit(
            policy,
            probe_lint(issue.kind),
            unit,
            Some(func),
            issue.block.map(|b| b.to_string()),
            issue.message,
        );
    }
}

/// Tolerances for the flow lints ([`analyze_flow`]).
///
/// Annotated counts come from *sampled* profiles and survive count repair
/// that converges to within a fraction of a percent, so the checks need
/// slack: relative (`rel`), absolute (`abs`), and a floor (`min_count`)
/// below which counts are statistically meaningless.
#[derive(Clone, Copy, Debug)]
pub struct FlowTolerance {
    /// Relative slack on each inequality (e.g. `0.05` = 5%).
    pub rel: f64,
    /// Absolute slack in samples.
    pub abs: f64,
    /// Blocks with a count below this are skipped entirely.
    pub min_count: u64,
}

impl Default for FlowTolerance {
    fn default() -> Self {
        FlowTolerance {
            rel: 0.05,
            abs: 16.0,
            min_count: 32,
        }
    }
}

/// Checks annotated block counts for flow-conservation violations (`PF001`)
/// and dominance impossibilities (`PF002`), and — when edge counts are
/// attached — edge/block reconciliation (`PF006`).
///
/// With block counts only (no edge counts), Kirchhoff's law degrades to
/// inequalities: a non-exit block cannot execute more often than its
/// successors combined, a non-entry block not more often than its
/// predecessors combined. Dominance gives `count(b) ≤ count(idom(b))` — but
/// only for blocks outside every natural loop, since loop bodies are
/// legitimately hotter than their dominating preheaders.
///
/// With edge counts (post-inference annotation), the inequalities tighten
/// to equalities within tolerance, which catches corruptions PF001–PF005
/// cannot: per-edge miscounts that still sum plausibly against one side of
/// a block, and edges recorded between blocks the CFG does not connect.
pub fn analyze_flow(
    policy: &Policy,
    unit: &str,
    module: &Module,
    tol: FlowTolerance,
    report: &mut Report,
) {
    for func in &module.functions {
        analyze_function_flow(policy, unit, func, tol, report);
    }
}

fn analyze_function_flow(
    policy: &Policy,
    unit: &str,
    func: &Function,
    tol: FlowTolerance,
    report: &mut Report,
) {
    if func.iter_blocks().all(|(_, b)| b.count.is_none()) {
        return; // not annotated
    }
    let preds = cfg::predecessors(func);
    let dom = Dominators::compute(func);
    let loops = LoopInfo::compute(func);
    let in_loop = |b: BlockId| loops.depth(b) > 0;

    let emit = |report: &mut Report, id: &str, b: BlockId, msg: String| {
        report.emit(
            policy,
            lint(id),
            unit,
            Some(func.name.clone()),
            Some(b.to_string()),
            msg,
        );
    };

    for (bid, block) in func.iter_blocks() {
        let Some(c) = block.count else { continue };
        if c < tol.min_count || !dom.is_reachable(bid) {
            continue;
        }
        let lower_bound = (c as f64) * (1.0 - tol.rel) - tol.abs;

        // Outflow: a block that does not return must hand its executions to
        // its successors.
        let succs = block.successors();
        if !succs.is_empty() {
            let counts: Option<Vec<u64>> = succs.iter().map(|&s| func.block(s).count).collect();
            if let Some(counts) = counts {
                let total: u64 = counts.iter().sum();
                if (total as f64) < lower_bound {
                    emit(
                        report,
                        "PF001",
                        bid,
                        format!(
                            "block count {c} exceeds combined successor count {total} \
                             (outflow not conserved)"
                        ),
                    );
                }
            }
        }

        // Inflow: a non-entry block must be reached through its predecessors.
        if bid != func.entry {
            let ps = &preds[bid.index()];
            let counts: Option<Vec<u64>> = ps.iter().map(|&p| func.block(p).count).collect();
            if let Some(counts) = counts {
                let total: u64 = counts.iter().sum();
                if (total as f64) < lower_bound {
                    emit(
                        report,
                        "PF001",
                        bid,
                        format!(
                            "block count {c} exceeds combined predecessor count {total} \
                             (inflow not conserved)"
                        ),
                    );
                }
            }
        }

        // Dominance: outside loops, a block cannot outrun its immediate
        // dominator.
        if !in_loop(bid) {
            if let Some(idom) = dom.idom(bid) {
                if idom != bid && !in_loop(idom) {
                    if let Some(dc) = func.block(idom).count {
                        if (c as f64) > (dc as f64) * (1.0 + tol.rel) + tol.abs {
                            emit(
                                report,
                                "PF002",
                                bid,
                                format!(
                                    "count {c} exceeds immediate dominator {idom}'s \
                                     count {dc} outside any loop"
                                ),
                            );
                        }
                    }
                }
            }
        }
    }

    // PF006: edge counts, when attached, must reconcile with block counts
    // as near-equalities (two-sided band, unlike the one-sided PF001
    // inequalities) and may only name real CFG edges.
    let Some(ec) = &func.edge_counts else { return };
    let in_band = |total: u64, c: u64| -> bool {
        let lo = (c as f64) * (1.0 - tol.rel) - tol.abs;
        let hi = (c as f64) * (1.0 + tol.rel) + tol.abs;
        (lo..=hi).contains(&(total as f64))
    };
    for (bid, block) in func.iter_blocks() {
        let Some(c) = block.count else { continue };
        if c < tol.min_count || !dom.is_reachable(bid) {
            continue;
        }
        // Exit blocks hand their flow back to the caller, not to recorded
        // edges; the entry carries head flow on top of its in-edges. Those
        // sides are exempt.
        if !cfg::successors(func, bid).is_empty() {
            let total = ec.out_total(bid);
            if !in_band(total, c) {
                emit(
                    report,
                    "PF006",
                    bid,
                    format!(
                        "recorded out-edge total {total} does not reconcile \
                         with block count {c}"
                    ),
                );
            }
        }
        if bid != func.entry {
            let total = ec.in_total(bid);
            if !in_band(total, c) {
                emit(
                    report,
                    "PF006",
                    bid,
                    format!(
                        "recorded in-edge total {total} does not reconcile \
                         with block count {c}"
                    ),
                );
            }
        }
    }
    for (from, to, c) in ec.iter() {
        if c < tol.min_count {
            continue;
        }
        if !cfg::successors(func, from).contains(&to) {
            emit(
                report,
                "PF006",
                from,
                format!("recorded edge {from} -> {to} (count {c}) is not a CFG edge"),
            );
        }
    }
}
