//! Stale-profile matching lints (`SM001`–`SM005`).
//!
//! The matching *algorithm* lives in [`csspgo_core::stalematch`] so the
//! annotation pipeline can consume recovered counts without a dependency
//! cycle (this crate depends on `csspgo-core`, not the other way around;
//! same layering note as the `IV`/`PI` checks in the crate docs). This
//! module adds lint identity, policy, and reporting on top of a
//! [`MatchOutcome`]:
//!
//! * `SM001` — a call-anchor label repeats on one side of an alignment, so
//!   the match between those anchors is positional, not exact.
//! * `SM002` — two source probes mapped onto one target probe. The mapping
//!   is injective by construction; this firing means the matcher itself is
//!   broken (default `Deny`).
//! * `SM003` — a function recovered more weight than its source profile
//!   held. Also impossible by construction (default `Deny`).
//! * `SM004` — the checksum matches but call-anchor targets changed: the
//!   CFG *shape* hash cannot see a call retarget, so counts silently
//!   describe calls to a different function.
//! * `SM005` — a rename was adopted below the high-confidence similarity
//!   threshold.

use crate::diag::{find_lint, Lint, Policy, Report};
use csspgo_core::profile::ProbeProfile;
use csspgo_core::stalematch::{match_stale_profile, FuncMatchStatus, MatchConfig, MatchOutcome};
use csspgo_ir::Module;

fn lint(id: &str) -> &'static Lint {
    find_lint(id).expect("SM lints are registered")
}

/// Runs the matcher and emits the `SM` diagnostics for its outcome.
/// Returns the outcome so callers can also consume the recovered profile
/// or build a [`crate::diffreport::DiffReport`].
pub fn analyze_stale_match(
    policy: &Policy,
    unit: &str,
    module: &Module,
    profile: &ProbeProfile,
    cfg: &MatchConfig,
    report: &mut Report,
) -> MatchOutcome {
    let outcome = match_stale_profile(module, profile, cfg);
    emit_match_lints(policy, unit, &outcome, cfg, report);
    outcome
}

/// Emits `SM001`–`SM005` for an already-computed [`MatchOutcome`].
pub fn emit_match_lints(
    policy: &Policy,
    unit: &str,
    outcome: &MatchOutcome,
    cfg: &MatchConfig,
    report: &mut Report,
) {
    for f in &outcome.funcs {
        let func = Some(f.name.clone());
        if f.ambiguous_anchors > 0 {
            report.emit(
                policy,
                lint("SM001"),
                unit,
                func.clone(),
                None,
                format!(
                    "{} repeated call-anchor label(s): alignment is positional there",
                    f.ambiguous_anchors
                ),
            );
        }
        if f.two_to_one > 0 {
            report.emit(
                policy,
                lint("SM002"),
                unit,
                func.clone(),
                None,
                format!(
                    "{} probe mapping(s) collided on one target probe",
                    f.two_to_one
                ),
            );
        }
        if f.recovered_weight > f.old_weight {
            report.emit(
                policy,
                lint("SM003"),
                unit,
                func.clone(),
                None,
                format!(
                    "recovered weight {} exceeds source weight {}",
                    f.recovered_weight, f.old_weight
                ),
            );
        }
        if f.anchor_drift {
            report.emit(
                policy,
                lint("SM004"),
                unit,
                func.clone(),
                None,
                "checksum matches but call-anchor targets changed (CFG-shape hash \
                 cannot see a call retarget)"
                    .into(),
            );
        }
        if let FuncMatchStatus::Renamed {
            from, similarity, ..
        } = &f.status
        {
            if *similarity < cfg.strong_rename_similarity {
                report.emit(
                    policy,
                    lint("SM005"),
                    unit,
                    func.clone(),
                    None,
                    format!(
                        "adopted rename {from} -> {} at similarity {similarity:.2} \
                         (high-confidence threshold {:.2})",
                        f.name, cfg.strong_rename_similarity
                    ),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csspgo_ir::probe::anchor_sequence;

    fn probed(src: &str) -> Module {
        let mut m = csspgo_lang::compile(src, "t").unwrap();
        csspgo_opt::discriminators::run(&mut m);
        csspgo_opt::probes::run(&mut m);
        m
    }

    fn profile_for(module: &Module) -> ProbeProfile {
        let mut p = ProbeProfile::default();
        for f in &module.functions {
            let fp = p.funcs.entry(f.guid).or_default();
            fp.checksum = f.probe_checksum.unwrap();
            fp.entry = 100;
            for a in anchor_sequence(module, f.id) {
                fp.record_sum(a.index, 10);
                if let Some(callee) = a.callee {
                    fp.callsite_mut(a.index, callee).entry = 10;
                }
            }
            fp.recompute_totals();
            p.names.insert(f.guid, f.name.clone());
        }
        p
    }

    const SRC: &str = r#"
fn a(x) { return x + 1; }
fn b(x) { return x + 2; }
fn f(x) {
    let u = a(x);
    let v = a(u);
    let w = b(v);
    return w;
}
"#;

    #[test]
    fn clean_profile_emits_nothing_under_deny_all() {
        let m = probed(SRC);
        let p = profile_for(&m);
        let mut report = Report::new();
        let out = analyze_stale_match(
            &Policy::deny_all(),
            "u",
            &m,
            &p,
            &MatchConfig::default(),
            &mut report,
        );
        assert!(report.diagnostics.is_empty(), "{}", report.render_human());
        assert_eq!(out.count("checksum-match"), 3);
    }

    #[test]
    fn drifted_profile_reports_ambiguity_but_no_invariant_violations() {
        let m_old = probed(SRC);
        let p = profile_for(&m_old);
        // CFG drift in `f` (extra branch) forces a real alignment; the
        // repeated `a` label is ambiguous.
        let drifted = SRC.replace(
            "let u = a(x);",
            "if (x > 1000000) { return 0; }\n    let u = a(x);",
        );
        let m_new = probed(&drifted);
        let mut report = Report::new();
        analyze_stale_match(
            &Policy::default(),
            "u",
            &m_new,
            &p,
            &MatchConfig::default(),
            &mut report,
        );
        assert!(!report.by_lint("SM001").is_empty(), "ambiguous `a` label");
        assert!(report.by_lint("SM002").is_empty());
        assert!(report.by_lint("SM003").is_empty());
        assert!(!report.has_denied());
    }

    #[test]
    fn call_retarget_fires_anchor_drift() {
        // `a`/`b` have identical CFG shapes, so swapping the callee keeps
        // f's checksum while changing the call target.
        let m_old = probed(SRC);
        let p = profile_for(&m_old);
        let m_new = probed(&SRC.replace("let w = b(v);", "let w = a(v);"));
        assert_eq!(
            m_old.functions[2].probe_checksum, m_new.functions[2].probe_checksum,
            "retarget must be checksum-invisible for this test to bite"
        );
        let mut report = Report::new();
        analyze_stale_match(
            &Policy::default(),
            "u",
            &m_new,
            &p,
            &MatchConfig::default(),
            &mut report,
        );
        assert!(!report.by_lint("SM004").is_empty(), "retarget undetected");
    }

    #[test]
    fn low_confidence_rename_fires_sm005() {
        let m_old = probed(SRC);
        let p = profile_for(&m_old);
        // Rename f -> f2 *and* drift its body: the anchor sequences still
        // overlap enough to adopt, but below the 0.9 confidence bar.
        let renamed = SRC
            .replace("fn f(x)", "fn f2(x)")
            .replace("let w = b(v);", "let w = b(v);\n    let z = b(w);");
        let m_new = probed(&renamed);
        let mut report = Report::new();
        let out = analyze_stale_match(
            &Policy::default(),
            "u",
            &m_new,
            &p,
            &MatchConfig::default(),
            &mut report,
        );
        assert_eq!(out.count("renamed"), 1, "{:#?}", out.funcs);
        assert!(!report.by_lint("SM005").is_empty());
    }
}
