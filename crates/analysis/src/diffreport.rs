//! The `csspgo_diff` differential report: per-function match quality and
//! per-scenario recovery summaries, serialized to JSON for CI artifacts
//! and golden tests.
//!
//! Fractions are rounded to four decimals at construction time so the JSON
//! is stable across floating-point noise (golden tests pin the output).

use crate::diag::{Diagnostic, Policy, Report};
use crate::module_lints::{analyze_flow, FlowTolerance};
use crate::provenance::module_weights;
use csspgo_core::annotate::{csspgo_annotate, AnnotateConfig};
use csspgo_core::inference::InferenceMode;
use csspgo_core::profile::ProbeProfile;
use csspgo_core::stalematch::{FuncMatchStatus, MatchOutcome, StaleMatching};
use csspgo_ir::Module;
use serde::Serialize;

/// Rounds to four decimals for byte-stable JSON.
fn round4(x: f64) -> f64 {
    (x * 10_000.0).round() / 10_000.0
}

/// Match quality for one profiled function.
#[derive(Clone, Debug, Serialize)]
pub struct FuncDiffRecord {
    /// Function name (fresh module's name; the profile's for drops).
    pub name: String,
    /// GUID the counts landed under.
    pub guid: u64,
    /// `checksum-match` | `recovered` | `renamed` | `dropped`.
    pub status: String,
    /// For renames: the profiled (old) name.
    pub renamed_from: Option<String>,
    /// For renames: anchor-sequence similarity, rounded.
    pub similarity: Option<f64>,
    /// Probes mapped through exact anchors.
    pub matched_probes: usize,
    /// Probes mapped positionally between anchors.
    pub fuzzy_probes: usize,
    /// Profiled probes with no mapping.
    pub dropped_probes: usize,
    /// Repeated call-anchor labels (positional alignment there).
    pub ambiguous_anchors: usize,
    /// Checksum matched while call targets changed (`SM004`).
    pub anchor_drift: bool,
    /// Source profile weight.
    pub old_weight: u64,
    /// Weight present in the recovered profile.
    pub recovered_weight: u64,
    /// `recovered_weight / old_weight`, rounded.
    pub recovered_fraction: f64,
}

/// How much repair profile inference had to do on a scenario's recovered
/// counts, and what the flow lints say before and after it ran.
#[derive(Clone, Debug, Serialize)]
pub struct InferenceQuality {
    /// Inference algorithm measured (`mcf`).
    pub mode: String,
    /// Functions that went through inference.
    pub functions: u64,
    /// Blocks whose count inference changed.
    pub counts_adjusted: u64,
    /// Total absolute count change, Σ|final − raw|.
    pub flow_moved: u64,
    /// Total min-cost-flow routing cost.
    pub residual_cost: u64,
    /// `PF` flow findings on the raw (uninferred) annotation.
    pub pf_findings_raw: usize,
    /// `PF` flow findings after inference (0 = clean by construction).
    pub pf_findings_inferred: usize,
}

/// Measures [`InferenceQuality`] for one (module, profile) pair: annotates
/// a clone with inference off and one with MCF (stale recovery on, no
/// inline replay so the two CFGs stay identical), then runs the `PF` flow
/// lints over both.
pub fn inference_quality(module: &Module, profile: &ProbeProfile) -> InferenceQuality {
    let annotate = |mode: InferenceMode| {
        let mut m = module.clone();
        let cfg = AnnotateConfig {
            inline_budget: 0,
            stale_matching: StaleMatching::Recover,
            inference: mode,
            ..AnnotateConfig::default()
        };
        let stats = csspgo_annotate(&mut m, profile, None, &cfg);
        (m, stats)
    };
    let pf_findings = |m: &Module| {
        let mut report = Report::new();
        analyze_flow(
            &Policy::default(),
            "inference-quality",
            m,
            FlowTolerance::default(),
            &mut report,
        );
        report.diagnostics.len()
    };
    let (raw_module, _) = annotate(InferenceMode::Off);
    let (inferred_module, stats) = annotate(InferenceMode::Mcf);
    InferenceQuality {
        mode: InferenceMode::Mcf.name().to_string(),
        functions: stats.inference.functions,
        counts_adjusted: stats.inference.counts_adjusted,
        flow_moved: stats.inference.flow_moved,
        residual_cost: stats.inference.residual_cost,
        pf_findings_raw: pf_findings(&raw_module),
        pf_findings_inferred: pf_findings(&inferred_module),
    }
}

/// Where a scenario's recovered weight came from: per-provenance-tag
/// totals and shares over the annotated module.
#[derive(Clone, Debug, Serialize)]
pub struct ProvenanceBreakdown {
    /// Weight under raw-sample counts.
    pub sampled: u64,
    /// Weight transferred by the stale matcher.
    pub stale_matched: u64,
    /// Weight invented or materially adjusted by inference.
    pub inferred: u64,
    /// Weight recovered from sparse counters.
    pub reconstructed: u64,
    /// `sampled / total`, rounded.
    pub sampled_share: f64,
    /// `stale_matched / total`, rounded.
    pub stale_matched_share: f64,
    /// `inferred / total`, rounded.
    pub inferred_share: f64,
    /// `reconstructed / total`, rounded.
    pub reconstructed_share: f64,
}

/// Measures a [`ProvenanceBreakdown`] for one (module, profile) pair:
/// annotates a clone with stale recovery and MCF inference on (the
/// `csspgo_diff` measurement configuration, matching
/// [`inference_quality`]) and sums the annotated weight by tag.
pub fn provenance_breakdown(module: &Module, profile: &ProbeProfile) -> ProvenanceBreakdown {
    let mut m = module.clone();
    let cfg = AnnotateConfig {
        inline_budget: 0,
        stale_matching: StaleMatching::Recover,
        inference: InferenceMode::Mcf,
        ..AnnotateConfig::default()
    };
    csspgo_annotate(&mut m, profile, None, &cfg);
    let w = module_weights(&m);
    let total = w.total().max(1) as f64;
    ProvenanceBreakdown {
        sampled: w.sampled,
        stale_matched: w.stale_matched,
        inferred: w.inferred,
        reconstructed: w.reconstructed,
        sampled_share: round4(w.sampled as f64 / total),
        stale_matched_share: round4(w.stale_matched as f64 / total),
        inferred_share: round4(w.inferred as f64 / total),
        reconstructed_share: round4(w.reconstructed as f64 / total),
    }
}

/// One drift scenario's full differential result.
#[derive(Clone, Debug, Serialize)]
pub struct ScenarioReport {
    /// Scenario name (e.g. `change_cfg`).
    pub scenario: String,
    /// Workload the profile was collected on.
    pub workload: String,
    /// Profiled functions examined.
    pub funcs_total: usize,
    /// Functions whose checksum still matched (passthrough).
    pub checksum_matched: usize,
    /// Functions salvaged by anchor alignment.
    pub recovered: usize,
    /// Functions transplanted under a new name.
    pub renamed: usize,
    /// Functions with nothing recoverable.
    pub dropped: usize,
    /// Source weight held by checksum-mismatched functions.
    pub stale_old_weight: u64,
    /// Weight recovered for them.
    pub stale_recovered_weight: u64,
    /// `stale_recovered_weight / stale_old_weight`, rounded.
    pub stale_recovered_fraction: f64,
    /// Per-function records, sorted by name.
    pub functions: Vec<FuncDiffRecord>,
    /// `SM` diagnostics emitted for this scenario.
    pub diagnostics: Vec<Diagnostic>,
    /// Inference repair effort and before/after flow-lint findings
    /// (absent when the caller did not measure it).
    pub inference_quality: Option<InferenceQuality>,
    /// Per-tag provenance of the recovered weight (absent when the caller
    /// did not measure it).
    pub provenance: Option<ProvenanceBreakdown>,
}

impl ScenarioReport {
    /// Builds a scenario report from a match outcome plus the diagnostics
    /// its lint pass produced.
    pub fn from_outcome(
        scenario: &str,
        workload: &str,
        outcome: &MatchOutcome,
        diagnostics: Vec<Diagnostic>,
    ) -> Self {
        let functions: Vec<FuncDiffRecord> = outcome
            .funcs
            .iter()
            .map(|f| {
                let (renamed_from, similarity) = match &f.status {
                    FuncMatchStatus::Renamed {
                        from, similarity, ..
                    } => (Some(from.clone()), Some(round4(*similarity))),
                    _ => (None, None),
                };
                FuncDiffRecord {
                    name: f.name.clone(),
                    guid: f.guid,
                    status: f.status.tag().to_string(),
                    renamed_from,
                    similarity,
                    matched_probes: f.matched_probes,
                    fuzzy_probes: f.fuzzy_probes,
                    dropped_probes: f.dropped_probes,
                    ambiguous_anchors: f.ambiguous_anchors,
                    anchor_drift: f.anchor_drift,
                    old_weight: f.old_weight,
                    recovered_weight: f.recovered_weight,
                    recovered_fraction: round4(f.recovered_fraction()),
                }
            })
            .collect();
        ScenarioReport {
            scenario: scenario.to_string(),
            workload: workload.to_string(),
            funcs_total: outcome.funcs.len(),
            checksum_matched: outcome.count("checksum-match"),
            recovered: outcome.count("recovered"),
            renamed: outcome.count("renamed"),
            dropped: outcome.count("dropped"),
            stale_old_weight: outcome.stale_old_weight(),
            stale_recovered_weight: outcome.stale_recovered_weight(),
            stale_recovered_fraction: round4(outcome.stale_recovered_fraction()),
            functions,
            diagnostics,
            inference_quality: None,
            provenance: None,
        }
    }

    /// Attaches a measured [`InferenceQuality`] section.
    pub fn with_inference_quality(mut self, q: InferenceQuality) -> Self {
        self.inference_quality = Some(q);
        self
    }

    /// Attaches a measured [`ProvenanceBreakdown`] section.
    pub fn with_provenance(mut self, p: ProvenanceBreakdown) -> Self {
        self.provenance = Some(p);
        self
    }
}

/// The complete `csspgo_diff` report.
#[derive(Clone, Debug, Serialize)]
pub struct DiffReport {
    /// Format tag for downstream consumers.
    pub schema: &'static str,
    /// One entry per analyzed (scenario, workload) pair.
    pub scenarios: Vec<ScenarioReport>,
}

impl DiffReport {
    /// An empty report with the current schema tag.
    pub fn new() -> Self {
        DiffReport {
            schema: "csspgo-diff-v1",
            scenarios: Vec::new(),
        }
    }

    /// Pretty JSON (the CI artifact and golden-test payload).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("diff reports are serializable")
    }
}

impl Default for DiffReport {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csspgo_core::profile::ProbeProfile;
    use csspgo_core::stalematch::{match_stale_profile, MatchConfig};

    #[test]
    fn report_counts_reconcile_with_outcome() {
        let mut m = csspgo_lang::compile(
            "fn g(x) { return x; } fn f(x) { if (x > 0) { return g(x); } return 0; }",
            "t",
        )
        .unwrap();
        csspgo_opt::probes::run(&mut m);
        let mut p = ProbeProfile::default();
        for f in &m.functions {
            let fp = p.funcs.entry(f.guid).or_default();
            fp.checksum = f.probe_checksum.unwrap();
            fp.record_sum(1, 5);
            fp.recompute_totals();
            p.names.insert(f.guid, f.name.clone());
        }
        let out = match_stale_profile(&m, &p, &MatchConfig::default());
        let sr = ScenarioReport::from_outcome("s", "w", &out, Vec::new());
        assert_eq!(sr.funcs_total, 2);
        assert_eq!(sr.checksum_matched, 2);
        assert_eq!(
            sr.funcs_total,
            sr.checksum_matched + sr.recovered + sr.renamed + sr.dropped
        );
        let mut report = DiffReport::new();
        report.scenarios.push(sr);
        let json = report.to_json();
        assert!(json.contains("csspgo-diff-v1"), "{json}");
        assert!(json.contains("\"checksum_matched\": 2"), "{json}");
    }

    #[test]
    fn rounding_is_stable() {
        assert_eq!(round4(0.123_449_99), 0.1234);
        assert_eq!(round4(1.0), 1.0);
        assert_eq!(round4(2.0 / 3.0), 0.6667);
    }
}
