//! Profile-integrity lints: checks over collected profiles
//! ([`ProbeProfile`], [`ContextProfile`]) against the module that produced
//! them — staleness (`PF004`), out-of-range probe references (`PF005`), and
//! context-tree consistency (`PF003`).

use crate::diag::{find_lint, Lint, Policy, Report};
use csspgo_core::context::{ContextNode, ContextProfile};
use csspgo_core::profile::{ProbeFuncProfile, ProbeProfile};
use csspgo_ir::Module;

fn lint(id: &str) -> &'static Lint {
    find_lint(id).expect("registry covers every emitted lint")
}

/// Tolerances for the context-tree lint ([`analyze_context_profile`]).
///
/// Child entry counts (from LBR call edges) and parent call-site probe
/// counts (period-subsampled address hits) are *different estimators* of
/// the same call frequency, and on recursive contexts they routinely
/// disagree by 2–3×. The lint is after structural corruption —
/// wrong-context attribution is typically orders of magnitude off — so the
/// default bound is deliberately generous.
#[derive(Clone, Copy, Debug)]
pub struct ContextTolerance {
    /// Relative slack on the parent bound (`2.0` allows 3× the parent).
    pub rel: f64,
    /// Absolute slack in samples.
    pub abs: f64,
    /// Child contexts entered fewer times than this are skipped.
    pub min_entry: u64,
}

impl Default for ContextTolerance {
    fn default() -> Self {
        ContextTolerance {
            rel: 2.0,
            abs: 64.0,
            min_entry: 32,
        }
    }
}

/// Name for `guid` in diagnostics: the profile's name table, else the hex
/// GUID.
fn guid_name(names: &std::collections::BTreeMap<u64, String>, guid: u64) -> String {
    names
        .get(&guid)
        .cloned()
        .unwrap_or_else(|| format!("{guid:#018x}"))
}

/// Checks a flattened probe profile against `module`: per-function checksum
/// staleness (`PF004`) and probe indices the function never allocated
/// (`PF005`). Call-site sub-profiles are checked recursively against their
/// callee functions.
pub fn analyze_probe_profile(
    policy: &Policy,
    unit: &str,
    module: &Module,
    profile: &ProbeProfile,
    report: &mut Report,
) {
    for (&guid, fp) in &profile.funcs {
        check_func_profile(
            policy,
            unit,
            module,
            guid,
            fp,
            &guid_name(&profile.names, guid),
            &profile.names,
            report,
        );
    }
}

#[allow(clippy::too_many_arguments)]
fn check_func_profile(
    policy: &Policy,
    unit: &str,
    module: &Module,
    guid: u64,
    fp: &ProbeFuncProfile,
    path: &str,
    names: &std::collections::BTreeMap<u64, String>,
    report: &mut Report,
) {
    // Functions absent from the module (stale profile from another binary)
    // cannot be range-checked; the checksum lint still fires below via the
    // stale path when the caller knows the function.
    if let Some(fid) = module.find_function_by_guid(guid) {
        let func = module.func(fid);
        if let Some(expected) = func.probe_checksum {
            if fp.checksum != 0 && fp.checksum != expected {
                report.emit(
                    policy,
                    lint("PF004"),
                    unit,
                    Some(func.name.clone()),
                    Some(path.to_string()),
                    format!(
                        "profile checksum {:#x} does not match module CFG checksum {:#x}",
                        fp.checksum, expected
                    ),
                );
            }
            for &index in fp.probes.keys() {
                if index == 0 || index >= func.next_probe_index {
                    report.emit(
                        policy,
                        lint("PF005"),
                        unit,
                        Some(func.name.clone()),
                        Some(path.to_string()),
                        format!(
                            "profile counts probe {index}, but the function only \
                             allocated indices 1..{}",
                            func.next_probe_index
                        ),
                    );
                }
            }
        }
    }
    for (&(callsite, callee_guid), sub) in &fp.callsites {
        let sub_path = format!("{path}@{callsite}:{}", guid_name(names, callee_guid));
        check_func_profile(
            policy,
            unit,
            module,
            callee_guid,
            sub,
            &sub_path,
            names,
            report,
        );
    }
}

/// Checks context-tree consistency (`PF003`): a child context is entered
/// through its parent's call-site probe, so the child's entry count cannot
/// exceed that probe's count (within sampling tolerance).
pub fn analyze_context_profile(
    policy: &Policy,
    unit: &str,
    profile: &ContextProfile,
    tol: ContextTolerance,
    report: &mut Report,
) {
    for (&guid, root) in &profile.roots {
        let path = guid_name(&profile.names, guid);
        check_context_node(policy, unit, root, &path, &profile.names, tol, report);
    }
}

fn check_context_node(
    policy: &Policy,
    unit: &str,
    node: &ContextNode,
    path: &str,
    names: &std::collections::BTreeMap<u64, String>,
    tol: ContextTolerance,
    report: &mut Report,
) {
    for (&(callsite, callee_guid), child) in &node.children {
        let child_path = format!("{path}@{callsite}:{}", guid_name(names, callee_guid));
        if child.entry >= tol.min_entry {
            let parent_count = node.probes.get(&callsite).copied().unwrap_or(0);
            let bound = (parent_count as f64) * (1.0 + tol.rel) + tol.abs;
            if (child.entry as f64) > bound {
                report.emit(
                    policy,
                    lint("PF003"),
                    unit,
                    Some(guid_name(names, node.guid)),
                    Some(child_path.clone()),
                    format!(
                        "child context entered {} times but parent call-site probe \
                         {callsite} only counted {parent_count}",
                        child.entry
                    ),
                );
            }
        }
        check_context_node(policy, unit, child, &child_path, names, tol, report);
    }
}
