//! Golden test pinning the `csspgo_diff` JSON report (`csspgo-diff-v1`):
//! the exact bytes a fixed program + synthetic profile produce across the
//! three interesting drift classes. CI consumes this JSON as an artifact,
//! so format changes must be deliberate — re-bless with
//!
//! ```text
//! BLESS=1 cargo test -p csspgo-analysis --test diff_golden
//! ```
//!
//! Everything feeding the report is deterministic: GUIDs are name hashes,
//! the profile is synthesized (no simulation), and fractions are rounded
//! to four decimals at construction.

use csspgo_analysis::{Analyzer, DiffReport, Policy, ScenarioReport};
use csspgo_core::profile::ProbeProfile;
use csspgo_core::stalematch::MatchConfig;
use csspgo_ir::probe::anchor_sequence;
use csspgo_ir::Module;
use csspgo_workloads::drift;
use std::path::Path;

/// The fixture: `mid` carries two call anchors (enough for rename
/// detection), `serve` exercises interval mapping around a loop.
const SRC: &str = r#"
fn leaf(x) {
    if (x % 3 == 0) { return x * 2; }
    return x + 1;
}
fn mid(x) {
    let a = leaf(x);
    let b = leaf(x + 1);
    return a + b;
}
fn serve(n) {
    let i = 0;
    let s = 0;
    while (i < n) {
        s = s + mid(i);
        i = i + 1;
    }
    return s;
}
"#;

fn probed(src: &str) -> Module {
    let mut m = csspgo_lang::compile(src, "golden").unwrap();
    csspgo_opt::discriminators::run(&mut m);
    csspgo_opt::probes::run(&mut m);
    m
}

fn synthetic_profile(module: &Module) -> ProbeProfile {
    let mut p = ProbeProfile::default();
    for f in &module.functions {
        let fp = p.funcs.entry(f.guid).or_default();
        fp.checksum = f.probe_checksum.unwrap();
        fp.entry = 1000;
        for a in anchor_sequence(module, f.id) {
            fp.record_sum(a.index, 100 + a.index as u64);
            if let Some(callee) = a.callee {
                fp.callsite_mut(a.index, callee).entry = 10;
            }
        }
        fp.recompute_totals();
        p.names.insert(f.guid, f.name.clone());
    }
    p
}

#[test]
fn diff_report_json_matches_golden() {
    let m_old = probed(SRC);
    let profile = synthetic_profile(&m_old);

    let mut analyzer = Analyzer::new(Policy::default());
    let mut report = DiffReport::new();
    let scenarios = [
        ("insert_body_comments", drift::insert_body_comments(SRC)),
        ("change_cfg", drift::change_cfg(SRC)),
        // Renames `mid` — the function with call anchors — like
        // csspgo_diff's rename_one picks its best-connected target.
        ("rename", drift::rename_functions(SRC, &["leaf", "serve"])),
    ];
    for (name, drifted) in scenarios {
        let module = probed(&drifted);
        let unit = format!("golden/{name}");
        let before = analyzer.report().diagnostics.len();
        let outcome =
            analyzer.analyze_stale_match(&unit, &module, &profile, &MatchConfig::default());
        let diags = analyzer.report().diagnostics[before..].to_vec();
        let sr = ScenarioReport::from_outcome(name, "golden", &outcome, diags)
            .with_inference_quality(csspgo_analysis::inference_quality(&module, &profile))
            .with_provenance(csspgo_analysis::provenance_breakdown(&module, &profile));
        report.scenarios.push(sr);
    }
    // The fixture must exercise all three outcomes the report classifies.
    for sr in &report.scenarios {
        let q = sr.inference_quality.as_ref().unwrap();
        assert_eq!(
            q.pf_findings_inferred, 0,
            "{}: MCF-inferred profiles are flow-clean by construction",
            sr.scenario
        );
        let p = sr.provenance.as_ref().unwrap();
        assert!(
            p.sampled + p.stale_matched + p.inferred + p.reconstructed > 0,
            "{}: provenance tags must survive annotation end-to-end",
            sr.scenario
        );
    }
    // CFG drift forces the matcher (and then inference) to carry weight,
    // and the tags must say so.
    let cfg_prov = report.scenarios[1].provenance.as_ref().unwrap();
    assert!(
        cfg_prov.stale_matched > 0,
        "change_cfg weight must be tagged stale-matched"
    );
    assert!(
        cfg_prov.inferred > 0,
        "change_cfg must carry solver-inferred weight"
    );
    assert!(
        report.scenarios[0].checksum_matched == 3,
        "comment drift is transparent"
    );
    assert!(report.scenarios[1].recovered > 0, "change_cfg must recover");
    assert!(report.scenarios[2].renamed == 1, "mid_v2 must be adopted");

    let got = report.to_json();
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/diff_report.json");
    if std::env::var("BLESS").is_ok() {
        std::fs::write(&path, &got).unwrap();
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run with BLESS=1",
            path.display()
        )
    });
    assert_eq!(
        got.trim_end(),
        want.trim_end(),
        "csspgo_diff JSON drifted from the golden report; if intentional, \
         re-bless: BLESS=1 cargo test -p csspgo-analysis --test diff_golden"
    );
}
