//! Seeded-corruption tests: every lint family must fire — with the expected
//! stable lint id — when its invariant is deliberately broken, and must stay
//! silent on healthy modules and profiles. This is the acceptance gate for
//! the analyzer: a lint that cannot catch its own seeded corruption is dead
//! weight.

use csspgo_analysis::{Analyzer, Policy};
use csspgo_core::context::{ContextNode, ContextProfile};
use csspgo_core::profile::{ProbeFuncProfile, ProbeProfile};
use csspgo_ir::ids::{BlockId, FuncId};
use csspgo_ir::inst::InstKind;
use csspgo_ir::probe::ProbeSite;
use csspgo_ir::{EdgeCounts, Module};

const SRC: &str = r#"
fn helper(x) {
    if (x % 3 == 0) { return x * 2; }
    return x + 1;
}
fn main(n) {
    let i = 0;
    let s = 0;
    while (i < n) {
        s = s + helper(i);
        i = i + 1;
    }
    return s;
}
"#;

/// A realistic probed module: compiled, discriminators assigned, probes
/// inserted — the state the analyzer sees as "fresh".
fn fresh_module() -> Module {
    let mut m = csspgo_lang::compile(SRC, "corruption").unwrap();
    csspgo_opt::discriminators::run(&mut m);
    csspgo_opt::probes::run(&mut m);
    m
}

fn deny_all_analyzer() -> Analyzer {
    Analyzer::new(Policy::deny_all())
}

/// Applies `mutate` to the module, analyzes it, and returns the report.
fn analyze_mutated(fresh: bool, mutate: impl FnOnce(&mut Module)) -> csspgo_analysis::Report {
    let mut m = fresh_module();
    mutate(&mut m);
    let mut a = deny_all_analyzer();
    a.analyze_module("seeded", &m, fresh);
    a.into_report()
}

/// The first pseudo-probe instruction position in any block of `main`.
fn first_probe_pos(m: &Module) -> (usize, BlockId, usize) {
    let fid = m.find_function("main").unwrap();
    let func = m.func(fid);
    for (bid, block) in func.iter_blocks() {
        for (i, inst) in block.insts.iter().enumerate() {
            if matches!(inst.kind, InstKind::PseudoProbe { .. }) {
                return (fid.index(), bid, i);
            }
        }
    }
    panic!("probed module has no probes");
}

#[test]
fn clean_fresh_module_is_lint_free_under_deny_all() {
    let m = fresh_module();
    let mut a = deny_all_analyzer();
    a.analyze_module("clean", &m, true);
    assert!(
        a.report().diagnostics.is_empty(),
        "{}",
        a.report().render_human()
    );
}

#[test]
fn clean_optimized_module_is_lint_free_under_deny_all() {
    let mut m = fresh_module();
    let config = csspgo_opt::OptConfig {
        interpass_verify: true,
        ..csspgo_opt::OptConfig::default()
    };
    csspgo_opt::run_pipeline(&mut m, &config);
    let mut a = deny_all_analyzer();
    // Not fresh: cloning passes may replicate discriminators legally.
    a.analyze_module("optimized", &m, false);
    assert!(
        a.report().diagnostics.is_empty(),
        "{}",
        a.report().render_human()
    );
}

#[test]
fn missing_terminator_fires_iv001() {
    let report = analyze_mutated(false, |m| {
        let fid = m.find_function("main").unwrap();
        m.func_mut(fid).blocks[0].insts.pop();
    });
    assert!(
        !report.by_lint("IV001").is_empty(),
        "{}",
        report.render_human()
    );
    assert!(report.has_denied());
}

#[test]
fn duplicated_probe_without_factor_fires_pi001() {
    let report = analyze_mutated(false, |m| {
        let (f, bid, i) = first_probe_pos(m);
        let probe = m.functions[f].block(bid).insts[i].clone();
        m.functions[f].block_mut(bid).insts.insert(i, probe);
    });
    assert!(
        !report.by_lint("PI001").is_empty(),
        "{}",
        report.render_human()
    );
}

#[test]
fn underdeclared_duplication_factor_fires_pi002() {
    let report = analyze_mutated(false, |m| {
        // Three co-existing copies each declaring factor 2: combined weight
        // 1.5 > 1, so some cloning pass under-declared.
        let (f, bid, i) = first_probe_pos(m);
        let mut probe = m.functions[f].block(bid).insts[i].clone();
        if let InstKind::PseudoProbe { factor, .. } = &mut probe.kind {
            *factor = 2;
        }
        m.functions[f].block_mut(bid).insts[i] = probe.clone();
        m.functions[f].block_mut(bid).insts.insert(i, probe.clone());
        m.functions[f].block_mut(bid).insts.insert(i, probe);
    });
    assert!(
        !report.by_lint("PI002").is_empty(),
        "{}",
        report.render_human()
    );
    assert!(
        report.by_lint("PI001").is_empty(),
        "factors > 1 are not PI001"
    );
}

#[test]
fn mutated_probe_index_fires_pi003() {
    let report = analyze_mutated(false, |m| {
        let (f, bid, i) = first_probe_pos(m);
        if let InstKind::PseudoProbe { index, .. } =
            &mut m.functions[f].block_mut(bid).insts[i].kind
        {
            *index = 999;
        }
    });
    assert!(
        !report.by_lint("PI003").is_empty(),
        "{}",
        report.render_human()
    );
}

#[test]
fn corrupted_inline_stack_fires_pi004() {
    let report = analyze_mutated(false, |m| {
        // Root the stack at a function that is not the physical container
        // (and does not even exist) — a truncated/mis-spliced stack.
        let (f, bid, i) = first_probe_pos(m);
        if let InstKind::PseudoProbe { inline_stack, .. } =
            &mut m.functions[f].block_mut(bid).insts[i].kind
        {
            inline_stack.push(ProbeSite {
                func: FuncId(99),
                probe_index: 1,
            });
        }
    });
    assert!(
        !report.by_lint("PI004").is_empty(),
        "{}",
        report.render_human()
    );
}

#[test]
fn discriminator_conflict_fires_pi005_on_fresh_ir_only() {
    let corrupt = |m: &mut Module| {
        let fid = m.find_function("main").unwrap();
        let func = m.func_mut(fid);
        // Give two instructions in one block the same line but different
        // discriminators.
        let insts = &mut func.blocks[0].insts;
        assert!(insts.len() >= 2);
        insts[0].loc.line = 42;
        insts[0].loc.discriminator = 0;
        insts[1].loc.line = 42;
        insts[1].loc.discriminator = 7;
    };
    let fresh = analyze_mutated(true, corrupt);
    assert!(
        !fresh.by_lint("PI005").is_empty(),
        "{}",
        fresh.render_human()
    );
    // The same corruption is ignored when the module is past cloning passes.
    let optimized = analyze_mutated(false, corrupt);
    assert!(optimized.by_lint("PI005").is_empty());
}

#[test]
fn non_monotone_discriminators_fire_pi006() {
    let report = analyze_mutated(true, |m| {
        let fid = m.find_function("main").unwrap();
        let func = m.func_mut(fid);
        let last = func.blocks.len() - 1;
        // The same (line, discriminator) in two blocks: not strictly rising.
        for b in [0, last] {
            let inst = func.blocks[b].insts.first_mut().unwrap();
            inst.loc.line = 43;
            inst.loc.discriminator = 5;
        }
    });
    assert!(
        !report.by_lint("PI006").is_empty(),
        "{}",
        report.render_human()
    );
}

#[test]
fn impossible_block_counts_fire_pf001_and_pf002() {
    // `helper` is branchy but loop-free: entry dominates both arms, so an
    // arm hotter than the entry is impossible both by flow conservation and
    // by dominance.
    let mut m = fresh_module();
    let fid = m.find_function("helper").unwrap();
    let func = m.func_mut(fid);
    let entry = func.entry;
    for (i, b) in func.blocks.iter_mut().enumerate() {
        b.count = Some(if BlockId::from_index(i) == entry {
            100
        } else {
            5000
        });
    }
    let mut a = deny_all_analyzer();
    a.analyze_flow("seeded", &m);
    let report = a.into_report();
    assert!(
        !report.by_lint("PF001").is_empty(),
        "{}",
        report.render_human()
    );
    assert!(
        !report.by_lint("PF002").is_empty(),
        "{}",
        report.render_human()
    );
}

#[test]
fn consistent_block_counts_are_lint_free() {
    // All-equal counts on a loop-free diamond satisfy every inequality.
    let mut m = fresh_module();
    let fid = m.find_function("helper").unwrap();
    for b in &mut m.func_mut(fid).blocks {
        b.count = Some(1000);
    }
    let mut a = deny_all_analyzer();
    a.analyze_flow("clean", &m);
    assert!(
        a.report().diagnostics.is_empty(),
        "{}",
        a.report().render_human()
    );
}

/// `helper`'s branch head, its returning arm, its fall-through arm, and
/// the tail block the fall-through arm branches to.
fn helper_shape(m: &Module, fid: FuncId) -> (BlockId, BlockId, BlockId, BlockId) {
    let func = m.func(fid);
    let succs = csspgo_ir::cfg::successors(func, func.entry);
    assert_eq!(succs.len(), 2, "helper's entry is a two-way branch");
    let (a1, a2) = if csspgo_ir::cfg::successors(func, succs[0]).is_empty() {
        (succs[0], succs[1])
    } else {
        (succs[1], succs[0])
    };
    let tail = csspgo_ir::cfg::successors(func, a2)[0];
    (func.entry, a1, a2, tail)
}

/// Annotates `helper` with flow-consistent block counts (entry 1000, arms
/// and tail 500 each) plus the consistent `a2 -> tail` edge, appends the
/// edge counts `edges` builds from `(entry, a1, a2)`, and runs the flow
/// lints.
fn analyze_helper_edges(
    edges: impl FnOnce(BlockId, BlockId, BlockId) -> Vec<(BlockId, BlockId, u64)>,
) -> csspgo_analysis::Report {
    let mut m = fresh_module();
    let fid = m.find_function("helper").unwrap();
    let (entry, a1, a2, tail) = helper_shape(&m, fid);
    let func = m.func_mut(fid);
    func.block_mut(entry).count = Some(1000);
    func.block_mut(a1).count = Some(500);
    func.block_mut(a2).count = Some(500);
    func.block_mut(tail).count = Some(500);
    func.entry_count = Some(1000);
    let mut es = edges(entry, a1, a2);
    es.push((a2, tail, 500));
    func.edge_counts = Some(EdgeCounts::new(es));
    let mut a = deny_all_analyzer();
    a.analyze_flow("seeded", &m);
    a.into_report()
}

#[test]
fn consistent_edge_counts_are_lint_free() {
    let report = analyze_helper_edges(|entry, a1, a2| vec![(entry, a1, 500), (entry, a2, 500)]);
    assert!(report.diagnostics.is_empty(), "{}", report.render_human());
}

#[test]
fn corrupted_edge_counts_fire_pf006_where_block_lints_stay_silent() {
    // Block counts stay perfectly plausible — entry 1000 flowing into arms
    // of 500 each satisfies every PF001/PF002 inequality — but the attached
    // edge counts claim both arms took the full 1000. Only the edge/block
    // reconciliation can see that.
    let report = analyze_helper_edges(|entry, a1, a2| vec![(entry, a1, 1000), (entry, a2, 1000)]);
    assert!(
        !report.by_lint("PF006").is_empty(),
        "{}",
        report.render_human()
    );
    for id in ["PF001", "PF002", "PF003", "PF004", "PF005"] {
        assert!(
            report.by_lint(id).is_empty(),
            "{id} must stay silent on this corruption:\n{}",
            report.render_human()
        );
    }
}

#[test]
fn non_cfg_recorded_edge_fires_pf006() {
    // Edge totals reconcile within tolerance, but one recorded edge connects
    // two blocks the CFG does not: both arms are returns, so `a2 -> a1`
    // cannot exist. PF001–PF005 see only block counts and stay silent.
    let report = analyze_helper_edges(|entry, a1, a2| {
        vec![(entry, a1, 500), (entry, a2, 500), (a2, a1, 40)]
    });
    let findings = report.by_lint("PF006");
    assert_eq!(findings.len(), 1, "{}", report.render_human());
    assert!(
        findings[0].message.contains("not a CFG edge"),
        "{}",
        findings[0].message
    );
}

#[test]
fn overcounted_child_context_fires_pf003() {
    let m = fresh_module();
    let main_guid = m.func(m.find_function("main").unwrap()).guid;
    let helper_guid = m.func(m.find_function("helper").unwrap()).guid;

    let mut parent = ContextNode {
        guid: main_guid,
        entry: 10,
        ..ContextNode::default()
    };
    parent.probes.insert(2, 10); // call-site probe counted 10 times...
    let child = ContextNode {
        guid: helper_guid,
        entry: 5000, // ...but the child claims 5000 entries through it.
        ..ContextNode::default()
    };
    parent.children.insert((2, helper_guid), child);
    let mut profile = ContextProfile::new();
    profile.roots.insert(main_guid, parent);
    profile.names.insert(main_guid, "main".into());
    profile.names.insert(helper_guid, "helper".into());

    let mut a = deny_all_analyzer();
    a.analyze_context_profile("seeded", &profile);
    let report = a.into_report();
    assert!(
        !report.by_lint("PF003").is_empty(),
        "{}",
        report.render_human()
    );
    // The diagnostic names the parent function and the child path.
    let d = report.by_lint("PF003")[0];
    assert_eq!(d.func.as_deref(), Some("main"));
    assert!(d.location.as_deref().unwrap().contains("helper"));
}

#[test]
fn stale_profile_checksum_fires_pf004() {
    let m = fresh_module();
    let func = m.func(m.find_function("main").unwrap());
    let guid = func.guid;
    let real = func
        .probe_checksum
        .expect("probed module records checksums");

    let mut profile = ProbeProfile::default();
    profile.funcs.insert(
        guid,
        ProbeFuncProfile {
            checksum: real ^ 0xdead_beef, // perturbed: stale binary
            ..ProbeFuncProfile::default()
        },
    );
    profile.names.insert(guid, "main".into());

    let mut a = deny_all_analyzer();
    a.analyze_probe_profile("seeded", &m, &profile);
    let report = a.into_report();
    assert!(
        !report.by_lint("PF004").is_empty(),
        "{}",
        report.render_human()
    );
}

#[test]
fn out_of_range_profile_probe_fires_pf005() {
    let m = fresh_module();
    let func = m.func(m.find_function("main").unwrap());
    let guid = func.guid;
    let checksum = func.probe_checksum.unwrap();

    let mut fp = ProbeFuncProfile {
        checksum,
        ..ProbeFuncProfile::default()
    };
    fp.probes.insert(func.next_probe_index + 7, 123); // never allocated
    let mut profile = ProbeProfile::default();
    profile.funcs.insert(guid, fp);
    profile.names.insert(guid, "main".into());

    let mut a = deny_all_analyzer();
    a.analyze_probe_profile("seeded", &m, &profile);
    let report = a.into_report();
    assert!(
        !report.by_lint("PF005").is_empty(),
        "{}",
        report.render_human()
    );
}

#[test]
fn default_policy_warns_but_does_not_deny_flow_lints() {
    let mut m = fresh_module();
    let fid = m.find_function("helper").unwrap();
    let func = m.func_mut(fid);
    let entry = func.entry;
    for (i, b) in func.blocks.iter_mut().enumerate() {
        b.count = Some(if BlockId::from_index(i) == entry {
            100
        } else {
            5000
        });
    }
    let mut a = Analyzer::new(Policy::default());
    a.analyze_flow("seeded", &m);
    let report = a.into_report();
    assert!(!report.diagnostics.is_empty());
    assert_eq!(report.denied(), 0, "flow lints default to Warn");
    assert!(report.warnings() > 0);
}
