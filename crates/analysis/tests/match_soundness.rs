//! Property tests for stale-matcher *soundness* (PR 5 satellite): under
//! arbitrary compositions of the shipped drift mutators, the matcher must
//! never violate its structural invariants —
//!
//! * the probe mapping is injective (`two_to_one == 0`, the `SM002`
//!   condition),
//! * no function recovers more weight than its source profile held (the
//!   `SM003` condition), in aggregate either,
//! * every function the recovered profile keeps carries a checksum the
//!   fresh module accepts (annotation would silently re-drop it
//!   otherwise).
//!
//! The mutators (`insert_statement`, `delete_statement`, renames, comment
//! drift) are *generators* here: some change behaviour, which is fine —
//! these properties are about the mapping's structure, not result
//! equality.

use csspgo_analysis::{Analyzer, Policy};
use csspgo_core::profile::ProbeProfile;
use csspgo_core::stalematch::{match_stale_profile, MatchConfig};
use csspgo_ir::probe::anchor_sequence;
use csspgo_ir::Module;
use csspgo_workloads::drift;
use proptest::prelude::*;

/// Compiles and probes a source.
fn probed(src: &str, name: &str) -> Module {
    let mut m = csspgo_lang::compile(src, name).expect("drifted sources stay compilable");
    csspgo_opt::discriminators::run(&mut m);
    csspgo_opt::probes::run(&mut m);
    m
}

/// Deterministic synthetic profile covering every probe and call edge of
/// `module` (counts vary by probe index so mapping bugs shift weight).
fn synthetic_profile(module: &Module) -> ProbeProfile {
    let mut p = ProbeProfile::default();
    for f in &module.functions {
        let fp = p.funcs.entry(f.guid).or_default();
        fp.checksum = f.probe_checksum.unwrap();
        fp.entry = 500;
        for a in anchor_sequence(module, f.id) {
            fp.record_sum(a.index, 50 + 7 * a.index as u64);
            if let Some(callee) = a.callee {
                fp.callsite_mut(a.index, callee).entry = 25;
            }
        }
        fp.recompute_totals();
        p.names.insert(f.guid, f.name.clone());
    }
    p
}

/// One drift edit, chosen by the property inputs.
#[derive(Clone, Copy, Debug)]
enum Edit {
    InsertComments,
    InsertBodyComments,
    ChangeCfg,
    InsertStatement(usize),
    DeleteStatement(usize),
    RenameOne(usize),
}

fn apply(src: &str, entry: &str, edit: Edit) -> String {
    match edit {
        Edit::InsertComments => drift::insert_comments(src),
        Edit::InsertBodyComments => drift::insert_body_comments(src),
        Edit::ChangeCfg => drift::change_cfg(src),
        Edit::InsertStatement(n) => drift::insert_statement(src, n),
        Edit::DeleteStatement(n) => drift::delete_statement(src, n),
        Edit::RenameOne(k) => {
            // Rename the k-th non-entry function (wrapping), keep the rest.
            let names: Vec<&str> = src
                .lines()
                .filter_map(|l| l.strip_prefix("fn "))
                .filter_map(|rest| rest.split('(').next())
                .map(str::trim)
                .filter(|n| *n != entry && !n.is_empty())
                .collect();
            if names.is_empty() {
                return src.to_string();
            }
            let target = names[k % names.len()];
            let keep: Vec<&str> = src
                .lines()
                .filter_map(|l| l.strip_prefix("fn "))
                .filter_map(|rest| rest.split('(').next())
                .map(str::trim)
                .filter(|n| *n != target)
                .collect();
            drift::rename_functions(src, &keep)
        }
    }
}

fn edit_strategy() -> impl Strategy<Value = Edit> {
    prop_oneof![
        Just(Edit::InsertComments),
        Just(Edit::InsertBodyComments),
        Just(Edit::ChangeCfg),
        (0usize..8).prop_map(Edit::InsertStatement),
        (0usize..8).prop_map(Edit::DeleteStatement),
        (0usize..8).prop_map(Edit::RenameOne),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn matcher_invariants_hold_under_random_drift(
        workload_idx in 0usize..5,
        edits in prop::collection::vec(edit_strategy(), 1..4),
    ) {
        let workloads = csspgo_workloads::server_workloads();
        let w = &workloads[workload_idx];
        let m_old = probed(&w.source, &w.name);
        let profile = synthetic_profile(&m_old);

        let mut src = w.source.clone();
        for &e in &edits {
            src = apply(&src, &w.entry, e);
        }
        let m_new = probed(&src, &w.name);
        let out = match_stale_profile(&m_new, &profile, &MatchConfig::default());

        let mut old_total = 0u64;
        let mut rec_total = 0u64;
        for f in &out.funcs {
            // SM002: the mapping is injective, always.
            prop_assert_eq!(f.two_to_one, 0, "two-to-one mapping in {:?}", f);
            // SM003: weight is conserved per function...
            prop_assert!(
                f.recovered_weight <= f.old_weight,
                "recovered {} > source {} in {:?}",
                f.recovered_weight,
                f.old_weight,
                f
            );
            old_total += f.old_weight;
            rec_total += f.recovered_weight;
        }
        // ...and in aggregate.
        prop_assert!(rec_total <= old_total);

        // Everything the recovered profile keeps must survive the
        // annotate-side checksum gate against the fresh module.
        for (&guid, fp) in &out.profile.funcs {
            if let Some(fid) = m_new.find_function_by_guid(guid) {
                let fresh = m_new.func(fid).probe_checksum.unwrap();
                prop_assert!(
                    fp.checksum == 0 || fp.checksum == fresh,
                    "recovered profile for {} would be re-dropped",
                    m_new.func(fid).name
                );
            }
        }

        // The SM lint pass over the outcome must never reach Deny under
        // the default policy: SM002/SM003 are the deny-by-default
        // invariant lints, and they cannot fire if the asserts above hold.
        let mut analyzer = Analyzer::new(Policy::default());
        analyzer.analyze_stale_match("prop", &m_new, &profile, &MatchConfig::default());
        let report = analyzer.into_report();
        prop_assert!(!report.has_denied(), "{}", report.render_human());
    }
}
