//! PGO on an interpreter (the HHVM-shaped workload): every variant, with
//! the microarchitectural breakdown that explains *where* each one wins.
//!
//! ```sh
//! cargo run --release --example interpreter_pgo
//! ```

use csspgo::core::pipeline::{run_pgo_cycle, PgoVariant, PipelineConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload = csspgo::workloads::hhvm().scaled(0.5);
    let config = PipelineConfig::default();

    println!(
        "{:<22} {:>10} {:>8} {:>9} {:>8} {:>7} {:>7}",
        "variant", "cycles", "taken", "mispred", "icache", "calls", "text"
    );
    let mut baseline = 0u64;
    for variant in PgoVariant::ALL {
        let o = run_pgo_cycle(&workload, variant, &config)?;
        println!(
            "{:<22} {:>10} {:>8} {:>9} {:>8} {:>7} {:>7}",
            variant.to_string(),
            o.eval.cycles,
            o.eval.taken_branches,
            o.eval.mispredicts,
            o.eval.icache_misses,
            o.eval.calls,
            o.sections.text
        );
        if variant == PgoVariant::AutoFdo {
            baseline = o.eval.cycles;
        }
        if variant == PgoVariant::CsspgoFull && baseline > 0 {
            let gain = (baseline as f64 - o.eval.cycles as f64) / baseline as f64 * 100.0;
            println!("  ↳ full CSSPGO vs AutoFDO: {gain:+.2}%");
        }
    }
    println!("\nreading the breakdown:");
    println!("  • taken branches drop when layout puts hot successors on the fall-through path");
    println!("  • calls drop when the (pre-)inliner flattens the hot dispatch handlers");
    println!("  • icache misses drop when cold handlers are split into the cold section");
    Ok(())
}
