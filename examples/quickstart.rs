//! Quickstart: run one full CSSPGO cycle on a small service and compare it
//! with the AutoFDO baseline.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use csspgo::core::pipeline::{run_pgo_cycle, PgoVariant, PipelineConfig};
use csspgo::core::Workload;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A tiny service: a hot scoring loop with a rare, bulky error path.
    let source = r#"
global weights[256];

fn sanitize(x) {
    if (x % 251 == 0) {
        // rare slow path
        let a = x * 3 + 1;
        let b = a * 5 + 2;
        let c = b * 7 + 3;
        return (a + b + c) % 1000003;
    }
    return x;
}

fn score(q, n) {
    let i = 0;
    let s = 0;
    while (i < n) {
        let w = weights[(q + i) % 256];
        s = s + sanitize(w * i);
        i = i + 1;
    }
    return s;
}
"#;
    let weights: Vec<i64> = (0..256).map(|i| (i * 37 + 11) % 100).collect();
    let mut workload = Workload::new(
        "quickstart",
        source,
        "score",
        (0..50).map(|i| vec![i * 7, 400]).collect(),
        (0..50).map(|i| vec![i * 7 + 3, 400]).collect(),
    );
    workload.setup = vec![("weights".into(), weights)];

    let config = PipelineConfig::default();
    println!("variant                 eval cycles    text bytes");
    let mut baseline = None;
    for variant in [PgoVariant::O2, PgoVariant::AutoFdo, PgoVariant::CsspgoFull] {
        let outcome = run_pgo_cycle(&workload, variant, &config)?;
        println!(
            "{:<22} {:>12} {:>13}",
            variant.to_string(),
            outcome.eval.cycles,
            outcome.sections.text
        );
        if variant == PgoVariant::AutoFdo {
            baseline = Some(outcome.eval.cycles);
        }
        if variant == PgoVariant::CsspgoFull {
            let base = baseline.expect("AutoFDO ran first");
            let gain = (base as f64 - outcome.eval.cycles as f64) / base as f64 * 100.0;
            println!("\nCSSPGO vs AutoFDO: {gain:+.2}% cycles");
        }
    }
    Ok(())
}
