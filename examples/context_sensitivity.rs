//! The paper's Fig. 3/4 example, end to end: a shared helper (`scalar_op`)
//! whose behaviour depends on the caller. Shows the context-sensitive
//! profile trie the synchronized LBR+stack unwinder reconstructs, and the
//! pre-inliner's specialization decisions.
//!
//! ```sh
//! cargo run --release --example context_sensitivity
//! ```

use csspgo::codegen::{lower_module, CodegenConfig};
use csspgo::core::context::{ContextNode, ContextProfile};
use csspgo::core::preinline::{run_preinliner, PreInlineConfig};
use csspgo::core::ranges::RangeCounts;
use csspgo::core::tailcall::TailCallGraph;
use csspgo::core::unwind::Unwinder;
use csspgo::sim::{Machine, SimConfig};

const SRC: &str = r#"
fn scalar_add(a, b) { return a + b; }
fn scalar_sub(a, b) { return a - b; }
fn scalar_op(a, b, is_add) {
    if (is_add == 1) { return scalar_add(a, b); }
    return scalar_sub(a, b);
}
fn add_vector_head(n) {
    let i = 0;
    let s = 0;
    while (i < n) { s = scalar_op(s, i, 1); i = i + 1; }
    return s;
}
fn sub_vector_head(n) {
    let i = 0;
    let s = 0;
    while (i < n) { s = scalar_op(s, i, 0); i = i + 1; }
    return s;
}
fn main(n) {
    return add_vector_head(n) + sub_vector_head(n);
}
"#;

fn print_node(profile: &ContextProfile, node: &ContextNode, indent: usize) {
    let name = |g: u64| {
        profile
            .names
            .get(&g)
            .cloned()
            .unwrap_or_else(|| format!("{g:#x}"))
    };
    println!(
        "{:indent$}{} (samples: {}, inlined: {})",
        "",
        name(node.guid),
        node.total(),
        node.inlined,
        indent = indent
    );
    for ((probe, _), child) in &node.children {
        println!(
            "{:indent$}@ call-site probe {probe}:",
            "",
            indent = indent + 2
        );
        print_node(profile, child, indent + 4);
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Build a probed binary and profile it with synchronized LBR + stack
    // sampling.
    let mut module = csspgo::lang::compile(SRC, "fig3")?;
    csspgo::opt::discriminators::run(&mut module);
    csspgo::opt::probes::run(&mut module);
    csspgo::opt::run_pipeline(&mut module, &csspgo::opt::OptConfig::default());
    let binary = lower_module(&module, &CodegenConfig::default());

    let mut machine = Machine::new(
        &binary,
        SimConfig {
            sample_period: 97,
            ..SimConfig::default()
        },
    );
    machine.call("main", &[30_000])?;
    let samples = machine.take_samples();
    println!(
        "collected {} synchronized LBR+stack samples\n",
        samples.len()
    );

    // Algorithm 1: reconstruct calling contexts.
    let mut rc = RangeCounts::default();
    rc.add_samples(&binary, &samples);
    let graph = TailCallGraph::build(&binary, &rc);
    let mut profile = ContextProfile::new();
    let mut unwinder = Unwinder::new(&binary, Some(&graph));
    unwinder.unwind_into(&samples, &mut profile);
    for f in &binary.funcs {
        profile.names.insert(f.guid, f.name.clone());
    }

    // Algorithm 2 + 3: the pre-inliner specializes per context.
    let result = run_preinliner(&mut profile, &binary, &PreInlineConfig::default());

    println!("context trie (paper Fig. 3b — scalar_op has a distinct profile per caller):");
    for root in profile.roots.values() {
        print_node(&profile, root, 2);
    }
    println!(
        "\npre-inliner: considered {} contexts, inlined {}",
        result.considered, result.inlined
    );
    println!("note how scalar_add appears only under add_vector_head's context and");
    println!("scalar_sub only under sub_vector_head's — a context-insensitive profile");
    println!("would merge them 50/50 (paper Fig. 3a).");
    Ok(())
}
