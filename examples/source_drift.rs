//! Source drift (paper §III.A): what happens to each PGO variant when the
//! source changes between the profiling build and the optimizing build.
//!
//! * comment-only drift: line numbers shift, CFG unchanged — AutoFDO's
//!   line-offset profile degrades; CSSPGO's checksums still match;
//! * CFG-changing drift: CSSPGO detects the mismatch and *rejects* the
//!   stale profile instead of mis-applying it.
//!
//! ```sh
//! cargo run --release --example source_drift
//! ```

use csspgo::core::pipeline::{run_pgo_cycle, run_pgo_cycle_drifted, PgoVariant, PipelineConfig};
use csspgo::workloads::drift;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload = csspgo::workloads::ad_retriever().scaled(0.5);
    let config = PipelineConfig::default();

    let commented = drift::insert_body_comments(&workload.source);
    let cfg_changed = drift::change_cfg(&workload.source);

    for variant in [PgoVariant::AutoFdo, PgoVariant::CsspgoFull] {
        let clean = run_pgo_cycle(&workload, variant, &config)?;
        let drifted = run_pgo_cycle_drifted(&workload, variant, &config, &commented)?;
        let broken = run_pgo_cycle_drifted(&workload, variant, &config, &cfg_changed)?;
        let penalty = (drifted.eval.cycles as f64 - clean.eval.cycles as f64)
            / clean.eval.cycles as f64
            * 100.0;
        println!("{variant}:");
        println!("  clean build:          {:>9} cycles", clean.eval.cycles);
        println!(
            "  comment drift:        {:>9} cycles ({penalty:+.2}%)",
            drifted.eval.cycles
        );
        println!(
            "  CFG-changing drift:   {:>9} cycles, {} stale profiles rejected",
            broken.eval.cycles,
            broken.annotate_stats.stale_total()
        );
        println!();
    }
    println!("(the paper observed ~8% loss from comment-level drift with AutoFDO,");
    println!(" while CSSPGO's CFG checksums make it drift-transparent)");
    Ok(())
}
