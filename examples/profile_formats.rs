//! Profile persistence: generate a real AutoFDO-style text profile and a
//! CSSPGO context profile from one simulated production run, print both, and
//! round-trip them through their parsers.
//!
//! ```sh
//! cargo run --release --example profile_formats
//! ```

use csspgo::codegen::{lower_module, CodegenConfig};
use csspgo::core::context::ContextProfile;
use csspgo::core::correlate::dwarf_profile;
use csspgo::core::ranges::RangeCounts;
use csspgo::core::tailcall::TailCallGraph;
use csspgo::core::textprof;
use csspgo::core::unwind::Unwinder;
use csspgo::sim::{Machine, SimConfig};

const SRC: &str = r#"
fn weigh(x) {
    if (x % 5 == 0) { return x * 2; }
    return x;
}
fn serve(q, n) {
    let i = 0;
    let s = 0;
    while (i < n) {
        s = s + weigh(q + i);
        i = i + 1;
    }
    return s;
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Profiling build (probes + full pipeline) and a production run.
    let mut module = csspgo::lang::compile(SRC, "svc")?;
    csspgo::opt::discriminators::run(&mut module);
    csspgo::opt::probes::run(&mut module);
    csspgo::opt::run_pipeline(&mut module, &csspgo::opt::OptConfig::default());
    let binary = lower_module(&module, &CodegenConfig::default());

    let mut machine = Machine::new(
        &binary,
        SimConfig {
            sample_period: 97,
            ..SimConfig::default()
        },
    );
    for q in 0..40 {
        machine.call("serve", &[q, 300])?;
    }
    let samples = machine.take_samples();
    let mut rc = RangeCounts::default();
    rc.add_samples(&binary, &samples);

    // --- AutoFDO-style flat text profile ---
    let flat = dwarf_profile(&binary, &rc);
    let flat_text = textprof::write_flat(&flat);
    println!("--- flat (AutoFDO-style) profile ---\n{flat_text}");
    let parsed = textprof::parse_flat(&flat_text)?;
    assert_eq!(parsed.funcs, flat.funcs, "flat round-trip");

    // --- CSSPGO context profile ---
    let graph = TailCallGraph::build(&binary, &rc);
    let mut ctx = ContextProfile::new();
    let mut unwinder = Unwinder::new(&binary, Some(&graph));
    unwinder.unwind_into(&samples, &mut ctx);
    for f in &binary.funcs {
        ctx.names.insert(f.guid, f.name.clone());
    }
    let ctx_text = textprof::write_context(&ctx);
    println!("--- context (CSSPGO) profile ---\n{ctx_text}");
    let parsed = textprof::parse_context(&ctx_text)?;
    assert_eq!(parsed.total(), ctx.total(), "context round-trip");

    println!("both formats round-tripped losslessly ✓");
    Ok(())
}
