//! Offline stand-in for `serde`.
//!
//! The real serde crate is unavailable in this build environment (no
//! registry access), so this crate provides a much simpler value-tree
//! model that covers everything the workspace needs: `#[derive(Serialize,
//! Deserialize)]` on concrete (non-generic) types, plus `serde_json`
//! `to_string`/`from_str` entry points built on [`Value`].
//!
//! Instead of serde's visitor architecture, serialization goes through an
//! intermediate [`Value`] tree: `Serialize::ser` produces a `Value`,
//! `Deserialize::de` consumes one. Formats (see `vendor/serde_json`)
//! render and parse `Value`s.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;
use std::hash::Hash;

/// A self-describing serialized value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    UInt(u64),
    Float(f64),
    Str(String),
    Seq(Vec<Value>),
    Map(Vec<(Value, Value)>),
}

/// Serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
    line: usize,
}

impl Error {
    pub fn custom(msg: impl Into<String>) -> Self {
        Error {
            msg: msg.into(),
            line: 0,
        }
    }

    pub fn at_line(msg: impl Into<String>, line: usize) -> Self {
        Error {
            msg: msg.into(),
            line,
        }
    }

    /// Line number of a parse error (0 when not applicable).
    pub fn line(&self) -> usize {
        self.line
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(f, "{} at line {}", self.msg, self.line)
        } else {
            f.write_str(&self.msg)
        }
    }
}

impl std::error::Error for Error {}

pub trait Serialize {
    fn ser(&self) -> Value;
}

pub trait Deserialize: Sized {
    fn de(v: &Value) -> Result<Self, Error>;

    /// Called when a named struct field is absent from the serialized map.
    /// `Option<T>` overrides this to produce `None`; everything else errors.
    fn missing_field(name: &str) -> Result<Self, Error> {
        Err(Error::custom(format!("missing field `{name}`")))
    }
}

/// Support routines used by the derive macro expansions.
pub mod helpers {
    use super::{Deserialize, Error, Value};

    /// Looks up `name` in a `Value::Map` with string keys, falling back to
    /// `T::missing_field` when absent (so `Option` fields tolerate absence).
    pub fn field<T: Deserialize>(v: &Value, name: &str) -> Result<T, Error> {
        let Value::Map(entries) = v else {
            return Err(Error::custom(format!(
                "expected map while reading field `{name}`"
            )));
        };
        for (k, val) in entries {
            if let Value::Str(s) = k {
                if s == name {
                    return T::de(val);
                }
            }
        }
        T::missing_field(name)
    }

    /// Indexes into a `Value::Seq` (used for tuple structs/variants).
    pub fn seq_item(v: &Value, idx: usize) -> Result<&Value, Error> {
        let Value::Seq(items) = v else {
            return Err(Error::custom("expected sequence"));
        };
        items
            .get(idx)
            .ok_or_else(|| Error::custom(format!("sequence too short: no element {idx}")))
    }
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn ser(&self) -> Value { Value::Int(*self as i64) }
        }
        impl Deserialize for $t {
            fn de(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Int(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::custom("integer out of range")),
                    Value::UInt(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::custom("integer out of range")),
                    Value::Float(f) if f.fract() == 0.0 => Ok(*f as $t),
                    _ => Err(Error::custom(concat!("expected ", stringify!($t)))),
                }
            }
        }
    )*};
}

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn ser(&self) -> Value { Value::UInt(*self as u64) }
        }
        impl Deserialize for $t {
            fn de(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::UInt(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::custom("integer out of range")),
                    Value::Int(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::custom("integer out of range")),
                    Value::Float(f) if f.fract() == 0.0 && *f >= 0.0 => Ok(*f as $t),
                    _ => Err(Error::custom(concat!("expected ", stringify!($t)))),
                }
            }
        }
    )*};
}

ser_int!(i8, i16, i32, i64, isize);
ser_uint!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn ser(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn de(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Float(f) => Ok(*f),
            Value::Int(n) => Ok(*n as f64),
            Value::UInt(n) => Ok(*n as f64),
            _ => Err(Error::custom("expected f64")),
        }
    }
}

impl Serialize for f32 {
    fn ser(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Deserialize for f32 {
    fn de(v: &Value) -> Result<Self, Error> {
        f64::de(v).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn ser(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn de(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::custom("expected bool")),
        }
    }
}

impl Serialize for String {
    fn ser(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn de(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::custom("expected string")),
        }
    }
}

impl Serialize for &str {
    fn ser(&self) -> Value {
        Value::Str((*self).to_string())
    }
}

impl Serialize for char {
    fn ser(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn de(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(Error::custom("expected single-char string")),
        }
    }
}

// ---------------------------------------------------------------------------
// Container impls
// ---------------------------------------------------------------------------

impl<T: Serialize> Serialize for Option<T> {
    fn ser(&self) -> Value {
        match self {
            Some(x) => x.ser(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn de(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::de(other).map(Some),
        }
    }

    fn missing_field(_name: &str) -> Result<Self, Error> {
        Ok(None)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn ser(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::ser).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn de(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) => items.iter().map(T::de).collect(),
            _ => Err(Error::custom("expected sequence")),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn ser(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::ser).collect())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn ser(&self) -> Value {
        (**self).ser()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn ser(&self) -> Value {
        (**self).ser()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn de(v: &Value) -> Result<Self, Error> {
        T::de(v).map(Box::new)
    }
}

macro_rules! ser_tuple {
    ($(($($n:tt $t:ident),+)),+ $(,)?) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn ser(&self) -> Value {
                Value::Seq(vec![$(self.$n.ser()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn de(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Seq(items) => Ok(($($t::de(
                        items.get($n).ok_or_else(|| Error::custom("tuple too short"))?
                    )?,)+)),
                    _ => Err(Error::custom("expected tuple sequence")),
                }
            }
        }
    )+};
}

ser_tuple!(
    (0 A),
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D),
    (0 A, 1 B, 2 C, 3 D, 4 E),
);

fn map_entries<'a, K: Serialize + 'a, V: Serialize + 'a>(
    it: impl Iterator<Item = (&'a K, &'a V)>,
) -> Value {
    let mut entries: Vec<(Value, Value)> = it.map(|(k, v)| (k.ser(), v.ser())).collect();
    // Hash containers iterate in arbitrary order; sort by the rendered key so
    // serialization is deterministic across runs.
    entries.sort_by(|a, b| value_sort_key(&a.0).cmp(&value_sort_key(&b.0)));
    Value::Map(entries)
}

fn value_sort_key(v: &Value) -> String {
    // A total order over serialized keys; exact shape doesn't matter as long
    // as it is deterministic.
    format!("{v:?}")
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn ser(&self) -> Value {
        Value::Map(self.iter().map(|(k, v)| (k.ser(), v.ser())).collect())
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn de(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, val)| Ok((K::de(k)?, V::de(val)?)))
                .collect(),
            _ => Err(Error::custom("expected map")),
        }
    }
}

impl<K: Serialize, V: Serialize> Serialize for HashMap<K, V> {
    fn ser(&self) -> Value {
        map_entries(self.iter())
    }
}

impl<K: Deserialize + Eq + Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn de(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, val)| Ok((K::de(k)?, V::de(val)?)))
                .collect(),
            _ => Err(Error::custom("expected map")),
        }
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn ser(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::ser).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn de(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) => items.iter().map(T::de).collect(),
            _ => Err(Error::custom("expected sequence")),
        }
    }
}

impl<T: Serialize> Serialize for HashSet<T> {
    fn ser(&self) -> Value {
        let mut items: Vec<Value> = self.iter().map(Serialize::ser).collect();
        items.sort_by(|a, b| value_sort_key(a).cmp(&value_sort_key(b)));
        Value::Seq(items)
    }
}

impl<T: Deserialize + Eq + Hash> Deserialize for HashSet<T> {
    fn de(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) => items.iter().map(T::de).collect(),
            _ => Err(Error::custom("expected sequence")),
        }
    }
}

impl Serialize for Value {
    fn ser(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn de(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}
