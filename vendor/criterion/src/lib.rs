//! Offline stand-in for `criterion`.
//!
//! A minimal timed-benchmark harness with the same surface the workspace's
//! benches use: `Criterion::default().sample_size(n)`, `bench_function`,
//! `Bencher::iter`, `criterion_group!`/`criterion_main!`, and `black_box`.
//!
//! Measurement model: each sample times a batch of iterations sized so one
//! batch takes ≥ ~2ms (calibrated per benchmark), then per-iteration times
//! are reported as `median (min .. max)` across samples. No statistical
//! regression analysis, plots, or baselines — just honest wall-clock
//! numbers printed to stdout.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be >= 2");
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, name: &str, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_count: self.sample_size,
        };
        routine(&mut b);
        b.report(name);
        self
    }
}

pub struct Bencher {
    /// Per-iteration time of each sample, in nanoseconds.
    samples: Vec<f64>,
    sample_count: usize,
}

impl Bencher {
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Calibrate: how many iterations make a ~2ms batch?
        let mut batch = 1u64;
        loop {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let elapsed = t.elapsed();
            if elapsed >= Duration::from_millis(2) || batch >= 1 << 20 {
                break;
            }
            // Grow toward the 2ms target, at least doubling.
            let scale = if elapsed.as_nanos() == 0 {
                16
            } else {
                (2_000_000 / elapsed.as_nanos().max(1) as u64).clamp(2, 16)
            };
            batch = batch.saturating_mul(scale);
        }
        self.samples.clear();
        for _ in 0..self.sample_count {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            self.samples
                .push(t.elapsed().as_nanos() as f64 / batch as f64);
        }
    }

    fn report(&self, name: &str) {
        if self.samples.is_empty() {
            println!("{name:<44} (no measurements: routine never called iter)");
            return;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let median = sorted[sorted.len() / 2];
        let min = sorted[0];
        let max = sorted[sorted.len() - 1];
        println!(
            "{name:<44} time: [{} {} {}]",
            fmt_ns(min),
            fmt_ns(median),
            fmt_ns(max)
        );
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default().sample_size(3);
        c.bench_function("smoke/add", |b| {
            b.iter(|| black_box(2u64) + black_box(3u64))
        });
    }
}
