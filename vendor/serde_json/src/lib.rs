//! Offline stand-in for `serde_json`, rendering and parsing the vendored
//! serde [`Value`] tree as JSON.
//!
//! One deliberate extension over standard JSON: map keys that are not
//! strings (tuples, integer newtypes, structs — all used as map keys in
//! this workspace) are emitted as their *compact JSON encoding* wrapped in
//! an object key string. The parser reverses this by attempting to re-parse
//! every object key as a JSON value, falling back to a plain string when
//! the key isn't valid JSON. This makes `BTreeMap<(u32, u64), _>` and
//! friends round-trip, which real serde_json would reject outright.

pub use serde::Error;
use serde::{Deserialize, Serialize, Value};

pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.ser(), None, 0);
    Ok(out)
}

pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.ser(), Some(2), 0);
    Ok(out)
}

pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut p = Parser::new(text);
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if !p.at_end() {
        return Err(Error::at_line("trailing characters", p.line));
    }
    T::de(&v)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // {:?} prints a round-trippable representation with a
                // decimal point or exponent, distinguishing floats from ints.
                out.push_str(&format!("{f:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_json_string(out, s),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_key(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

/// Object keys must be strings in JSON; non-string keys are encoded as the
/// compact JSON of the key value, stored in the key string.
fn write_key(out: &mut String, k: &Value) {
    match k {
        Value::Str(s) => write_json_string(out, s),
        other => {
            let mut repr = String::new();
            write_value(&mut repr, other, None, 0);
            write_json_string(out, &repr);
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..level * width {
            out.push(' ');
        }
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
            line: 1,
        }
    }

    fn at_end(&self) -> bool {
        self.pos >= self.bytes.len()
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
        }
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.bump();
        }
    }

    fn err(&self, msg: &str) -> Error {
        Error::at_line(msg, self.line)
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.bump();
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => {
                if self.eat_keyword("null") {
                    Ok(Value::Null)
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b't') => {
                if self.eat_keyword("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b'f') => {
                if self.eat_keyword("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.seq(),
            Some(b'{') => self.map(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn seq(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.bump();
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Seq(items)),
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn map(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.bump();
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key_str = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            entries.push((reparse_key(&key_str), val));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Map(entries)),
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.bump() {
                Some(b'"') => return Ok(s),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => s.push('"'),
                    Some(b'\\') => s.push('\\'),
                    Some(b'/') => s.push('/'),
                    Some(b'n') => s.push('\n'),
                    Some(b'r') => s.push('\r'),
                    Some(b't') => s.push('\t'),
                    Some(b'b') => s.push('\u{8}'),
                    Some(b'f') => s.push('\u{c}'),
                    Some(b'u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self
                                .bump()
                                .and_then(|b| (b as char).to_digit(16))
                                .ok_or_else(|| self.err("invalid \\u escape"))?;
                            code = code * 16 + d;
                        }
                        s.push(
                            char::from_u32(code)
                                .ok_or_else(|| self.err("invalid \\u codepoint"))?,
                        );
                    }
                    _ => return Err(self.err("invalid escape")),
                },
                Some(b) if b < 0x80 => s.push(b as char),
                Some(b) => {
                    // Multi-byte UTF-8: collect the full sequence.
                    let start = self.pos - 1;
                    let width = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    for _ in 1..width {
                        self.bump();
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    s.push_str(chunk);
                }
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.bump();
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => {
                    self.bump();
                }
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.bump();
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| self.err("invalid number"))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|_| self.err("invalid number"))
        } else {
            // Prefer UInt so u64 values beyond i64::MAX (GUIDs) survive.
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|_| self.err("invalid number"))
        }
    }
}

/// Reverses [`write_key`]: object keys that parse fully as JSON were
/// non-string keys encoded by the writer; anything else is a plain string.
fn reparse_key(key: &str) -> Value {
    let first = key.trim_start().bytes().next();
    let looks_encoded = matches!(first, Some(b'[' | b'{' | b'-' | b'0'..=b'9'))
        || key == "null"
        || key == "true"
        || key == "false";
    if looks_encoded {
        let mut p = Parser::new(key);
        if let Ok(v) = p.value() {
            p.skip_ws();
            if p.at_end() {
                return v;
            }
        }
    }
    Value::Str(key.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        assert_eq!(
            from_str::<u64>(&to_string(&u64::MAX).unwrap()).unwrap(),
            u64::MAX
        );
        assert_eq!(from_str::<i64>("-42").unwrap(), -42);
        assert_eq!(from_str::<f64>("2.5").unwrap(), 2.5);
        assert_eq!(from_str::<bool>("true").unwrap(), true);
        assert_eq!(from_str::<String>("\"a\\nb\"").unwrap(), "a\nb");
    }

    #[test]
    fn roundtrip_tuple_keys() {
        use std::collections::BTreeMap;
        let mut m: BTreeMap<(u32, u64), u64> = BTreeMap::new();
        m.insert((3, 9), 7);
        m.insert((1, 2), 5);
        let text = to_string_pretty(&m).unwrap();
        let back: BTreeMap<(u32, u64), u64> = from_str(&text).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn parse_error_reports_line() {
        let err = from_str::<Vec<u64>>("[1,\n2,\nxyz]").unwrap_err();
        assert_eq!(err.line(), 3);
    }
}
