//! Offline stand-in for `serde_derive`.
//!
//! The build container has no crates.io access, so the real serde stack is
//! unavailable. This proc-macro derives the *vendored* `serde` crate's
//! value-tree `Serialize`/`Deserialize` traits (see `vendor/serde`) for the
//! shapes this workspace actually uses:
//!
//! * structs with named fields (private fields included),
//! * tuple structs (1-field tuple structs serialize transparently, like
//!   serde newtypes — important for id newtypes used as map keys),
//! * enums with unit, tuple and struct variants (externally tagged).
//!
//! Generics are intentionally unsupported: no serialized type in this
//! workspace is generic, and refusing keeps the hand-rolled token parser
//! honest.
//!
//! The parser works on raw `proc_macro::TokenStream`s (no `syn`/`quote`
//! either); generated impls are rendered as strings and re-parsed.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Body {
    /// Named fields, in declaration order.
    Named(Vec<String>),
    /// Tuple struct with N fields.
    Tuple(usize),
    /// Unit struct.
    Unit,
}

enum Variant {
    Unit(String),
    Tuple(String, usize),
    Struct(String, Vec<String>),
}

enum Parsed {
    Struct(String, Body),
    Enum(String, Vec<Variant>),
}

/// Skips attributes (`#[...]`, including doc comments) and visibility
/// (`pub`, `pub(...)`).
fn skip_meta(tokens: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    loop {
        match tokens.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                // The bracketed attribute body.
                match tokens.peek() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                        tokens.next();
                    }
                    _ => panic!("serde stub derive: malformed attribute"),
                }
            }
            Some(TokenTree::Ident(i)) if i.to_string() == "pub" => {
                tokens.next();
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next(); // pub(crate) / pub(super)
                    }
                }
            }
            _ => return,
        }
    }
}

/// Counts the fields of a tuple-struct/tuple-variant body: top-level commas
/// at zero `<...>` depth separate fields (parens/brackets are opaque groups).
fn count_tuple_fields(body: TokenStream) -> usize {
    let mut depth = 0i32;
    let mut fields = 0usize;
    let mut saw_any = false;
    for t in body {
        match &t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                fields += 1;
                saw_any = false;
                continue;
            }
            _ => {}
        }
        saw_any = true;
    }
    if saw_any {
        fields += 1;
    }
    fields
}

/// Parses a named-field body (`{ a: T, b: U }` contents) into field names.
fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let mut names = Vec::new();
    let mut tokens = body.into_iter().peekable();
    loop {
        skip_meta(&mut tokens);
        let Some(tt) = tokens.next() else { break };
        let TokenTree::Ident(name) = tt else {
            panic!("serde stub derive: expected field name, got `{tt}`");
        };
        names.push(name.to_string());
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde stub derive: expected `:` after field, got {other:?}"),
        }
        // Consume the type up to a top-level comma.
        let mut depth = 0i32;
        for t in tokens.by_ref() {
            match &t {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => break,
                _ => {}
            }
        }
    }
    names
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let mut out = Vec::new();
    let mut tokens = body.into_iter().peekable();
    loop {
        skip_meta(&mut tokens);
        let Some(tt) = tokens.next() else { break };
        let TokenTree::Ident(name) = tt else {
            panic!("serde stub derive: expected variant name, got `{tt}`");
        };
        let name = name.to_string();
        match tokens.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                out.push(Variant::Tuple(name, n));
                tokens.next();
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                out.push(Variant::Struct(name, parse_named_fields(g.stream())));
                tokens.next();
            }
            _ => out.push(Variant::Unit(name)),
        }
        // Skip an optional discriminant and the separating comma.
        while let Some(t) = tokens.peek() {
            if matches!(t, TokenTree::Punct(p) if p.as_char() == ',') {
                tokens.next();
                break;
            }
            tokens.next();
        }
    }
    out
}

fn parse_item(input: TokenStream) -> Parsed {
    let mut tokens = input.into_iter().peekable();
    skip_meta(&mut tokens);
    let kind = match tokens.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("serde stub derive: expected struct/enum, got {other:?}"),
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("serde stub derive: expected type name, got {other:?}"),
    };
    if matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde stub derive: generic type `{name}` is unsupported");
    }
    match kind.as_str() {
        "struct" => {
            let body = match tokens.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Body::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Body::Tuple(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Body::Unit,
                other => panic!("serde stub derive: malformed struct body: {other:?}"),
            };
            Parsed::Struct(name, body)
        }
        "enum" => {
            let body = match tokens.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    parse_variants(g.stream())
                }
                other => panic!("serde stub derive: malformed enum body: {other:?}"),
            };
            Parsed::Enum(name, body)
        }
        other => panic!("serde stub derive: cannot derive for `{other}`"),
    }
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let code = match parse_item(input) {
        Parsed::Struct(name, Body::Named(fields)) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::serde::Value::Str(::std::string::String::from(\"{f}\")), \
                         ::serde::Serialize::ser(&self.{f}))"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn ser(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Map(::std::vec![{}])\n\
                     }}\n\
                 }}",
                entries.join(", ")
            )
        }
        Parsed::Struct(name, Body::Tuple(1)) => format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn ser(&self) -> ::serde::Value {{ ::serde::Serialize::ser(&self.0) }}\n\
             }}"
        ),
        Parsed::Struct(name, Body::Tuple(n)) => {
            let entries: Vec<String> = (0..n)
                .map(|i| format!("::serde::Serialize::ser(&self.{i})"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn ser(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Seq(::std::vec![{}])\n\
                     }}\n\
                 }}",
                entries.join(", ")
            )
        }
        Parsed::Struct(name, Body::Unit) => format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn ser(&self) -> ::serde::Value {{ ::serde::Value::Null }}\n\
             }}"
        ),
        Parsed::Enum(name, variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| match v {
                    Variant::Unit(vn) => format!(
                        "{name}::{vn} => \
                         ::serde::Value::Str(::std::string::String::from(\"{vn}\"))"
                    ),
                    Variant::Tuple(vn, n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("x{i}")).collect();
                        let payload = if *n == 1 {
                            "::serde::Serialize::ser(x0)".to_string()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::ser({b})"))
                                .collect();
                            format!("::serde::Value::Seq(::std::vec![{}])", items.join(", "))
                        };
                        format!(
                            "{name}::{vn}({binds}) => ::serde::Value::Map(::std::vec![\
                             (::serde::Value::Str(::std::string::String::from(\"{vn}\")), \
                             {payload})])",
                            binds = binds.join(", ")
                        )
                    }
                    Variant::Struct(vn, fields) => {
                        let binds = fields.join(", ");
                        let entries: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(::serde::Value::Str(::std::string::String::from(\"{f}\")), \
                                     ::serde::Serialize::ser({f}))"
                                )
                            })
                            .collect();
                        format!(
                            "{name}::{vn} {{ {binds} }} => ::serde::Value::Map(::std::vec![\
                             (::serde::Value::Str(::std::string::String::from(\"{vn}\")), \
                             ::serde::Value::Map(::std::vec![{}]))])",
                            entries.join(", ")
                        )
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn ser(&self) -> ::serde::Value {{\n\
                         match self {{ {} }}\n\
                     }}\n\
                 }}",
                arms.join(",\n")
            )
        }
    };
    code.parse()
        .expect("serde stub derive: generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let code = match parse_item(input) {
        Parsed::Struct(name, Body::Named(fields)) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::helpers::field(v, \"{f}\")?"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn de(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         ::std::result::Result::Ok({name} {{ {} }})\n\
                     }}\n\
                 }}",
                inits.join(", ")
            )
        }
        Parsed::Struct(name, Body::Tuple(1)) => format!(
            "impl ::serde::Deserialize for {name} {{\n\
                 fn de(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                     ::std::result::Result::Ok({name}(::serde::Deserialize::de(v)?))\n\
                 }}\n\
             }}"
        ),
        Parsed::Struct(name, Body::Tuple(n)) => {
            let inits: Vec<String> = (0..n)
                .map(|i| format!("::serde::Deserialize::de(::serde::helpers::seq_item(v, {i})?)?"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn de(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         ::std::result::Result::Ok({name}({}))\n\
                     }}\n\
                 }}",
                inits.join(", ")
            )
        }
        Parsed::Struct(name, Body::Unit) => format!(
            "impl ::serde::Deserialize for {name} {{\n\
                 fn de(_v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                     ::std::result::Result::Ok({name})\n\
                 }}\n\
             }}"
        ),
        Parsed::Enum(name, variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| match v {
                    Variant::Unit(vn) => Some(format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn})"
                    )),
                    _ => None,
                })
                .collect();
            let tagged_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| match v {
                    Variant::Unit(_) => None,
                    Variant::Tuple(vn, n) => {
                        let inits: Vec<String> = if *n == 1 {
                            vec!["::serde::Deserialize::de(payload)?".to_string()]
                        } else {
                            (0..*n)
                                .map(|i| {
                                    format!(
                                        "::serde::Deserialize::de(\
                                         ::serde::helpers::seq_item(payload, {i})?)?"
                                    )
                                })
                                .collect()
                        };
                        Some(format!(
                            "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}({}))",
                            inits.join(", ")
                        ))
                    }
                    Variant::Struct(vn, fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| format!("{f}: ::serde::helpers::field(payload, \"{f}\")?"))
                            .collect();
                        Some(format!(
                            "\"{vn}\" => ::std::result::Result::Ok({name}::{vn} {{ {} }})",
                            inits.join(", ")
                        ))
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn de(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         match v {{\n\
                             ::serde::Value::Str(tag) => match tag.as_str() {{\n\
                                 {unit}\n\
                                 other => ::std::result::Result::Err(::serde::Error::custom(\
                                     ::std::format!(\"unknown variant `{{other}}` of {name}\"))),\n\
                             }},\n\
                             ::serde::Value::Map(entries) if entries.len() == 1 => {{\n\
                                 let (tag, payload) = &entries[0];\n\
                                 let ::serde::Value::Str(tag) = tag else {{\n\
                                     return ::std::result::Result::Err(::serde::Error::custom(\
                                         \"enum tag must be a string\"));\n\
                                 }};\n\
                                 match tag.as_str() {{\n\
                                     {tagged}\n\
                                     other => ::std::result::Result::Err(::serde::Error::custom(\
                                         ::std::format!(\"unknown variant `{{other}}` of {name}\"))),\n\
                                 }}\n\
                             }}\n\
                             _ => ::std::result::Result::Err(::serde::Error::custom(\
                                 \"expected enum representation for {name}\")),\n\
                         }}\n\
                     }}\n\
                 }}",
                unit = if unit_arms.is_empty() {
                    String::new()
                } else {
                    format!("{},", unit_arms.join(",\n"))
                },
                tagged = if tagged_arms.is_empty() {
                    String::new()
                } else {
                    format!("{},", tagged_arms.join(",\n"))
                },
            )
        }
    };
    code.parse()
        .expect("serde stub derive: generated Deserialize impl parses")
}
