//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use: the [`Strategy`] trait with `prop_map`/`prop_flat_map`/
//! `prop_recursive`/`boxed`, range and tuple strategies, `Just`,
//! `any::<T>()`, `prop::collection::vec`, `prop_oneof!`, and the
//! `proptest!`/`prop_assert*!` macros.
//!
//! Differences from real proptest, by design:
//! * **No shrinking.** A failing case reports its seed and input but is not
//!   minimized.
//! * Sampling is driven by a deterministic per-(test, case) splitmix64
//!   generator, so failures are reproducible run to run.

use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

/// Deterministic per-case generator (splitmix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from the test name and case index, so each case of each test
    /// draws an independent, reproducible stream.
    pub fn for_case(test_name: &str, case: u64) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a offset basis
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng {
            state: h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, n)`.
    fn below(&mut self, n: u64) -> u64 {
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }
}

// ---------------------------------------------------------------------------
// Errors & config
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
pub struct TestCaseError {
    msg: String,
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError { msg: msg.into() }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

pub mod test_runner {
    /// Runner configuration; only `cases` is honored by this stub.
    #[derive(Debug, Clone)]
    pub struct Config {
        pub cases: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }
}

pub use test_runner::Config as ProptestConfig;

// ---------------------------------------------------------------------------
// Strategy core
// ---------------------------------------------------------------------------

pub trait Strategy: Clone {
    type Value;

    fn pick(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<R, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> R + Clone,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2 + Clone,
    {
        FlatMap { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Rc::new(self),
        }
    }

    /// Builds a recursive strategy: `depth` levels of `f`-expansion above the
    /// leaf `self`. At each level a coin decides between recursing and
    /// bottoming out, so generated structures have bounded depth. The `size`
    /// and `branch` hints are accepted for API compatibility but unused —
    /// the collection strategies inside `f` already bound width.
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _size: u32,
        _branch: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2,
    {
        let leaf = self.boxed();
        let mut strat = leaf.clone();
        for _ in 0..depth {
            strat = Union::new(vec![leaf.clone(), f(strat).boxed()]).boxed();
        }
        strat
    }
}

/// Object-safe view of a strategy, for boxing.
trait DynStrategy<T> {
    fn pick_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn pick_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.pick(rng)
    }
}

pub struct BoxedStrategy<T> {
    inner: Rc<dyn DynStrategy<T>>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            inner: Rc::clone(&self.inner),
        }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn pick(&self, rng: &mut TestRng) -> T {
        self.inner.pick_dyn(rng)
    }
}

#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, R> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> R + Clone,
{
    type Value = R;
    fn pick(&self, rng: &mut TestRng) -> R {
        (self.f)(self.inner.pick(rng))
    }
}

#[derive(Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2 + Clone,
{
    type Value = S2::Value;
    fn pick(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.pick(rng)).pick(rng)
    }
}

/// Weighted choice between boxed arms (what `prop_oneof!` builds; plain
/// arms get weight 1).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
}

impl<T> Union<T> {
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        Self::weighted(arms.into_iter().map(|a| (1, a)).collect())
    }

    pub fn weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        assert!(
            arms.iter().any(|(w, _)| *w > 0),
            "at least one weight must be positive"
        );
        Union { arms }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            arms: self.arms.clone(),
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn pick(&self, rng: &mut TestRng) -> T {
        let total: u64 = self.arms.iter().map(|(w, _)| *w as u64).sum();
        let mut r = rng.below(total);
        for (w, arm) in &self.arms {
            if r < *w as u64 {
                return arm.pick(rng);
            }
            r -= *w as u64;
        }
        unreachable!("weighted draw within total")
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn pick(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// ---------------------------------------------------------------------------
// Numeric strategies
// ---------------------------------------------------------------------------

macro_rules! impl_range_strategy {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn pick(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                ((self.start as $wide).wrapping_add(rng.below(span) as $wide)) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn pick(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                ((lo as $wide).wrapping_add(rng.below(span + 1) as $wide)) as $t
            }
        }
    )*};
}

impl_range_strategy!(
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
);

/// Full-range strategy for a type, reached through [`any`].
pub trait Arbitrary: Sized {
    type Strategy: Strategy<Value = Self>;
    fn arbitrary() -> Self::Strategy;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            type Strategy = RangeInclusive<$t>;
            fn arbitrary() -> Self::Strategy {
                <$t>::MIN..=<$t>::MAX
            }
        }
    )*};
}

impl_arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

#[derive(Debug, Clone)]
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;
    fn pick(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyBool;
    fn arbitrary() -> AnyBool {
        AnyBool
    }
}

pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

// ---------------------------------------------------------------------------
// Tuple strategies
// ---------------------------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($(($($s:ident),+)),+ $(,)?) => {$(
        #[allow(non_snake_case)]
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn pick(&self, rng: &mut TestRng) -> Self::Value {
                let ($($s,)+) = self;
                ($($s.pick(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!(
    (A),
    (A, B),
    (A, B, C),
    (A, B, C, D),
    (A, B, C, D, E),
    (A, B, C, D, E, F),
);

// ---------------------------------------------------------------------------
// Collections
// ---------------------------------------------------------------------------

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Element-count bound for collection strategies (inclusive).
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn pick(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let n = self.size.lo + rng.below(span + 1) as usize;
            (0..n).map(|_| self.element.pick(rng)).collect()
        }
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $arm:expr),+ $(,)?) => {
        $crate::Union::weighted(vec![$(($weight as u32, $crate::Strategy::boxed($arm))),+])
    };
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: {:?} == {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: {:?} == {:?}: {}", a, b, format!($($fmt)+));
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "assertion failed: {:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "assertion failed: {:?} != {:?}: {}", a, b, format!($($fmt)+));
    }};
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests!(($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests!(($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let strat = ($($strat,)+);
            for case in 0..config.cases {
                let mut rng = $crate::TestRng::for_case(stringify!($name), case as u64);
                let ($($pat,)+) = $crate::Strategy::pick(&strat, &mut rng);
                let result: ::core::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::core::result::Result::Ok(()) })();
                if let ::core::result::Result::Err(e) = result {
                    panic!(
                        "proptest `{}` failed at case {} of {}: {}",
                        stringify!($name),
                        case,
                        config.cases,
                        e
                    );
                }
            }
        }
    )*};
}

pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestRng,
        Union,
    };
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_case("ranges", 0);
        for _ in 0..1000 {
            let x = (3usize..9).pick(&mut rng);
            assert!((3..9).contains(&x));
            let y = (5u64..=5).pick(&mut rng);
            assert_eq!(y, 5);
        }
    }

    #[test]
    fn deterministic_per_case() {
        let s = crate::collection::vec((0u32..100, any::<u8>()), 1..20);
        let a = s.pick(&mut TestRng::for_case("t", 7));
        let b = s.pick(&mut TestRng::for_case("t", 7));
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_end_to_end(v in crate::collection::vec(0i32..10, 0..8), x in 1u8..5) {
            prop_assert!(v.len() < 8);
            prop_assert!(x >= 1 && x < 5);
            let doubled: Vec<i32> = v.iter().map(|n| n * 2).collect();
            prop_assert_eq!(doubled.len(), v.len());
        }
    }
}
