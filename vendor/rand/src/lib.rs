//! Offline stand-in for `rand` (0.10-style API surface).
//!
//! Provides exactly what this workspace uses: `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, and `RngExt::random_range` over
//! half-open integer ranges. The generator is splitmix64 — statistically
//! fine for workload synthesis, deterministic for a given seed (which is
//! all the benchmarks need).

use std::ops::Range;

pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Core generator trait: a source of uniform u64s.
pub trait Rng {
    fn next_u64(&mut self) -> u64;
}

pub mod rngs {
    /// splitmix64 generator; passes through u64 space with period 2^64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl super::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl super::Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// Types that can be sampled uniformly from a half-open range.
pub trait SampleRange: Sized {
    fn sample(rng: &mut impl Rng, range: Range<Self>) -> Self;
}

macro_rules! impl_sample_range {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleRange for $t {
            fn sample(rng: &mut impl Rng, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "random_range: empty range");
                let span = (range.end as $wide).wrapping_sub(range.start as $wide) as u64;
                // Multiply-shift uniform mapping; bias is negligible for the
                // span sizes used here and determinism is what matters.
                let x = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                ((range.start as $wide).wrapping_add(x as $wide)) as $t
            }
        }
    )*};
}

impl_sample_range!(
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
);

impl SampleRange for f64 {
    fn sample(rng: &mut impl Rng, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "random_range: empty range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        range.start + unit * (range.end - range.start)
    }
}

/// Extension methods on any [`Rng`] (rand 0.10's `random_range` naming).
pub trait RngExt: Rng {
    fn random_range<T: SampleRange>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample(self, range)
    }

    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }
}

impl<R: Rng> RngExt for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(
                a.random_range(0u64..1_000_000),
                b.random_range(0u64..1_000_000)
            );
        }
    }

    #[test]
    fn in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.random_range(-5i32..17);
            assert!((-5..17).contains(&x));
            let y = rng.random_range(3usize..4);
            assert_eq!(y, 3);
        }
    }
}
