//! Offline stand-in for `rayon`.
//!
//! Implements the slice of the rayon API this workspace uses —
//! `par_iter`/`into_par_iter` + `map` + `collect`, `join`, and
//! `current_num_threads` — with real parallelism via `std::thread::scope`.
//! Work is distributed by an atomic index over precomputed items, so
//! results come back in input order regardless of scheduling.
//!
//! Thread count honors `RAYON_NUM_THREADS` (like real rayon), defaulting
//! to `std::thread::available_parallelism`.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

pub mod prelude {
    pub use super::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator, ParallelIterator,
    };
}

/// Number of worker threads a parallel operation will use.
pub fn current_num_threads() -> usize {
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Runs two closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        let ra = a();
        let rb = b();
        return (ra, rb);
    }
    let mut rb_slot = None;
    let ra = std::thread::scope(|s| {
        let handle = s.spawn(b);
        let ra = a();
        rb_slot = Some(handle.join().expect("rayon stub: join worker panicked"));
        ra
    });
    (ra, rb_slot.unwrap())
}

/// Marker trait so generic code can bound on `ParallelIterator` like with
/// real rayon; the combinators are inherent methods.
pub trait ParallelIterator {}

pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T> ParallelIterator for ParIter<T> {}

pub struct ParMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T, F> ParallelIterator for ParMap<T, F> {}

pub trait IntoParallelIterator {
    type Item;
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl<T: Send, const N: usize> IntoParallelIterator for [T; N] {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter {
            items: self.into_iter().collect(),
        }
    }
}

pub trait IntoParallelRefIterator<'a> {
    type Item;
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

pub trait IntoParallelRefMutIterator<'a> {
    type Item;
    fn par_iter_mut(&'a mut self) -> ParIter<Self::Item>;
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for Vec<T> {
    type Item = &'a mut T;
    fn par_iter_mut(&'a mut self) -> ParIter<&'a mut T> {
        ParIter {
            items: self.iter_mut().collect(),
        }
    }
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for [T] {
    type Item = &'a mut T;
    fn par_iter_mut(&'a mut self) -> ParIter<&'a mut T> {
        ParIter {
            items: self.iter_mut().collect(),
        }
    }
}

impl<T: Send> ParIter<T> {
    pub fn map<R, F>(self, f: F) -> ParMap<T, F>
    where
        F: Fn(T) -> R + Sync + Send,
        R: Send,
    {
        ParMap {
            items: self.items,
            f,
        }
    }
}

impl<T: Send, F> ParMap<T, F> {
    pub fn collect<C, R>(self) -> C
    where
        F: Fn(T) -> R + Sync + Send,
        R: Send,
        C: From<Vec<R>>,
    {
        C::from(run_parallel(self.items, &self.f))
    }
}

/// Applies `f` to every item across a scoped thread pool, preserving input
/// order in the output.
fn run_parallel<T: Send, R: Send>(items: Vec<T>, f: &(impl Fn(T) -> R + Sync)) -> Vec<R> {
    let n = items.len();
    let threads = current_num_threads().min(n.max(1));
    if threads <= 1 || n <= 1 {
        return items.into_iter().map(f).collect();
    }
    let slots: Vec<Mutex<(Option<T>, Option<R>)>> = items
        .into_iter()
        .map(|item| Mutex::new((Some(item), None)))
        .collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = slots[i].lock().unwrap().0.take().unwrap();
                let result = f(item);
                slots[i].lock().unwrap().1 = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap()
                .1
                .expect("rayon stub: missing result")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<u64> = (0..1000).collect();
        let out: Vec<u64> = v.into_par_iter().map(|x| x * 2).collect();
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_iter_by_ref() {
        let v: Vec<u64> = (0..100).collect();
        let out: Vec<u64> = v.par_iter().map(|x| x + 1).collect();
        assert_eq!(out.iter().sum::<u64>(), v.iter().sum::<u64>() + 100);
    }

    #[test]
    fn par_iter_mut_mutates_in_place() {
        let mut v: Vec<u64> = (0..100).collect();
        let seen: Vec<u64> = v
            .par_iter_mut()
            .map(|x| {
                *x += 1;
                *x
            })
            .collect();
        assert_eq!(v, (1..=100).collect::<Vec<_>>());
        assert_eq!(seen, v);
    }

    #[test]
    fn join_runs_both() {
        let (a, b) = super::join(|| 1 + 1, || "x".repeat(3));
        assert_eq!(a, 2);
        assert_eq!(b, "xxx");
    }
}
